//===- profiling/FdWriter.h - Async-signal-safe fd text writer ---*- C++ -*-==//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny buffered text writer over a raw file descriptor for the profiler's
/// signal-handler export paths. stdio is off-limits there (FILE* operations
/// take locks and malloc their buffers), so this formats integers by hand
/// into a fixed on-stack buffer and flushes with plain write(2), retrying on
/// EINTR. Everything here is async-signal-safe and allocation-free.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_PROFILING_FDWRITER_H
#define LFMALLOC_PROFILING_FDWRITER_H

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <unistd.h>

namespace lfm {
namespace profiling {

/// Buffered, async-signal-safe writer. Not thread-safe; each export call
/// builds its own instance (they are cheap: one stack buffer).
class FdWriter {
public:
  explicit FdWriter(int Fd) : Fd(Fd) {}
  FdWriter(const FdWriter &) = delete;
  FdWriter &operator=(const FdWriter &) = delete;
  ~FdWriter() { flush(); }

  void ch(char C) {
    if (Len == sizeof(Buf))
      flush();
    Buf[Len++] = C;
  }

  void str(const char *S) {
    while (*S != '\0')
      ch(*S++);
  }

  /// Unsigned decimal.
  void dec(std::uint64_t V) {
    char Tmp[20];
    unsigned N = 0;
    do {
      Tmp[N++] = static_cast<char>('0' + V % 10);
      V /= 10;
    } while (V != 0);
    while (N > 0)
      ch(Tmp[--N]);
  }

  /// Lower-case hex with "0x" prefix, no leading zeros (pprof's pointer
  /// format).
  void hex(std::uint64_t V) {
    str("0x");
    char Tmp[16];
    unsigned N = 0;
    do {
      const unsigned Digit = static_cast<unsigned>(V & 0xF);
      Tmp[N++] = static_cast<char>(Digit < 10 ? '0' + Digit
                                              : 'a' + (Digit - 10));
      V >>= 4;
    } while (V != 0);
    while (N > 0)
      ch(Tmp[--N]);
  }

  /// Flushes buffered bytes with write(2), retrying on EINTR. Short writes
  /// (full pipe, disk error) drop the remainder: an export must never block
  /// or spin forever inside a signal handler.
  void flush() {
    std::size_t Off = 0;
    while (Off < Len) {
      const ssize_t W = ::write(Fd, Buf + Off, Len - Off);
      if (W > 0) {
        Off += static_cast<std::size_t>(W);
        continue;
      }
      if (W < 0 && errno == EINTR)
        continue;
      break;
    }
    Len = 0;
  }

  /// \returns true if every flush so far wrote all its bytes. (Unused
  /// remainder dropped by flush() is intentionally not tracked per byte;
  /// callers that care re-check with an fsync or stat.)
  int fd() const { return Fd; }

private:
  int Fd;
  std::size_t Len = 0;
  char Buf[512];
};

} // namespace profiling
} // namespace lfm

#endif // LFMALLOC_PROFILING_FDWRITER_H
