//===- profiling/StackTrace.cpp - Frame-pointer call-stack capture --------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "profiling/StackTrace.h"

#include <cstdint>

namespace {

/// A single frame must not span more than this many bytes of stack; larger
/// jumps mean the chain left well-formed territory (foreign frames without
/// frame pointers) and the walk stops.
constexpr std::uintptr_t MaxFrameBytes = 1u << 20;

/// Return addresses below the first page are garbage (null, small ints).
constexpr std::uintptr_t MinTextAddr = 4096;

} // namespace

unsigned lfm::profiling::captureStack(void **Out, unsigned Max,
                                      unsigned Skip) {
#if defined(__x86_64__) || defined(__aarch64__)
  // System V x86-64 and AArch64 AAPCS both store {caller fp, return addr}
  // at the frame pointer, and outermost frames terminate the chain with a
  // null fp (set up by libc thread start).
  void **Fp = static_cast<void **>(__builtin_frame_address(0));
  unsigned N = 0;
  const unsigned MaxWalk = Max + Skip + 8;
  for (unsigned Frame = 0; Fp != nullptr && N < Max && Frame < MaxWalk;
       ++Frame) {
    const std::uintptr_t Ret = reinterpret_cast<std::uintptr_t>(Fp[1]);
    if (Ret < MinTextAddr)
      break;
    if (Frame >= Skip)
      Out[N++] = Fp[1];
    const std::uintptr_t Cur = reinterpret_cast<std::uintptr_t>(Fp);
    const std::uintptr_t Next = reinterpret_cast<std::uintptr_t>(Fp[0]);
    // Stacks grow down, so caller frames sit strictly above; reject
    // non-monotonic, misaligned, or implausibly distant links before ever
    // dereferencing them.
    if (Next <= Cur || Next - Cur > MaxFrameBytes ||
        (Next & (sizeof(void *) - 1)) != 0)
      break;
    Fp = reinterpret_cast<void **>(Next);
  }
  return N;
#else
  (void)Out;
  (void)Max;
  (void)Skip;
  return 0;
#endif
}
