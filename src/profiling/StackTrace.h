//===- profiling/StackTrace.h - Frame-pointer call-stack capture -*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Return-address stack capture by frame-pointer chain walk, for the
/// sampling heap profiler. Chosen over libunwind precisely because the
/// walk must run *inside* malloc: it allocates nothing, takes no locks,
/// and touches only the current thread's stack, so it is lock-free and
/// async-signal-safe — the same guarantees the allocator itself makes.
///
/// The whole project is compiled with -fno-omit-frame-pointer (see the
/// top-level CMakeLists) so frames produced by our own code always chain
/// correctly. Frames from foreign code (libc, test runners) may not; the
/// walk validates each link (monotonically increasing, 8-byte aligned,
/// bounded frame size) and stops at the first implausible one rather than
/// dereferencing garbage.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_PROFILING_STACKTRACE_H
#define LFMALLOC_PROFILING_STACKTRACE_H

namespace lfm {
namespace profiling {

/// Walks this thread's frame-pointer chain and records up to \p Max return
/// addresses into \p Out, skipping the first \p Skip frames (the profiler's
/// own). Never inlined, so the skip count stays meaningful at any
/// optimization level. \returns the number of addresses recorded (0 on
/// architectures without a walkable frame chain).
///
/// Lock-free, malloc-free, async-signal-safe.
__attribute__((noinline)) unsigned captureStack(void **Out, unsigned Max,
                                                unsigned Skip);

} // namespace profiling
} // namespace lfm

#endif // LFMALLOC_PROFILING_STACKTRACE_H
