//===- profiling/HeapProfiler.h - Sampling heap profiler ---------*- C++ -*-==//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-free sampling heap profiler with allocation-site attribution.
///
/// Design, in one paragraph: each thread keeps a byte countdown; every
/// allocation subtracts its size, and when the countdown crosses zero the
/// allocation is *sampled* — its call stack is captured by frame-pointer
/// walk, interned into a fixed-capacity open-addressed site table
/// (CAS-claimed slots), and the pointer is tracked in a fixed-capacity
/// lock-free live map so the matching free can credit the site back. The
/// countdown is re-armed with a geometrically distributed interval with mean
/// \c RateBytes (default 512 KiB), which makes every allocated byte equally
/// likely to trigger a sample regardless of object size — the same scheme
/// gperftools and tcmalloc use — so dividing the sample rate by an object's
/// size yields an unbiased estimate of the true allocation counts.
///
/// Everything in the hot path is malloc-free (all storage is pre-mapped from
/// a private PageAllocator), lock-free (single CAS claims, no retry loops
/// that can be blocked by a stalled peer), and the text exporters are
/// async-signal-safe (raw fds, no stdio). The profiler never calls back into
/// the allocator it instruments; debug builds enforce this with a
/// thread-local reentry guard that \c LFAllocator asserts on entry.
///
/// Determinism: the per-thread RNG used for interval draws is seeded from
/// (\c Seed, thread slot), so a single-threaded workload replayed against the
/// same seed samples exactly the same allocations — the property the
/// deterministic sampler tests rely on.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_PROFILING_HEAPPROFILER_H
#define LFMALLOC_PROFILING_HEAPPROFILER_H

#include "lfmalloc/SizeClasses.h"
#include "os/PageAllocator.h"
#include "support/Platform.h"
#include "support/ThreadRegistry.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>

namespace lfm {
namespace profiling {

namespace detail {
/// Depth of profiler-internal code on this thread's stack. Nonzero means we
/// are inside a profiler path, where calling back into the instrumented
/// allocator would deadlock or recurse; LFAllocator asserts on it in debug
/// builds.
extern thread_local unsigned ProfilerReentryDepth;
} // namespace detail

/// \returns true while the current thread is inside a profiler code path.
inline bool inProfilerPath() { return detail::ProfilerReentryDepth != 0; }

/// RAII marker for profiler-internal code. Cheap (one thread-local
/// increment); placed on every path that must not allocate.
struct ReentryGuard {
  ReentryGuard() { ++detail::ProfilerReentryDepth; }
  ~ReentryGuard() { --detail::ProfilerReentryDepth; }
  ReentryGuard(const ReentryGuard &) = delete;
  ReentryGuard &operator=(const ReentryGuard &) = delete;
};

/// Deepest call stack recorded per site; deeper frames are truncated.
inline constexpr unsigned MaxStackDepth = 16;

/// Thread sampling slots. Power of two; thread indices beyond this share
/// slots (countdowns drift a little, estimates stay unbiased).
inline constexpr unsigned MaxProfilerThreads = 256;

/// Linear-probe bounds. Hitting them increments a dropped counter instead of
/// scanning unboundedly — overflow is accounted, never silent and never a
/// progress hazard.
inline constexpr unsigned SiteProbeLimit = 16;
inline constexpr unsigned LiveProbeLimit = 32;

/// Per-class bucket index used for sizes the instrumented instance routes to
/// the large-allocation path.
inline constexpr unsigned LargeClassBucket = NumSizeClasses;

struct ProfilerOptions {
  /// Mean bytes between samples (geometric). 1 byte = sample everything.
  std::size_t RateBytes = 512 * 1024;
  /// Base seed for the per-thread interval RNGs. The same seed and the same
  /// single-threaded allocation sequence sample identically.
  std::uint64_t Seed = 0x9E3779B97F4A7C15ull;
  /// Distinct allocation sites tracked (rounded up to a power of two).
  std::uint32_t SiteCapacity = 1024;
  /// Sampled live objects tracked at once (rounded up to a power of two).
  std::uint32_t LiveCapacity = 8192;
  /// Number of small size classes the instrumented instance serves; sizes in
  /// classes >= this go to its large path and land in LargeClassBucket.
  unsigned ClassCount = NumSizeClasses;
};

/// One interned allocation site. Claimed once by CAS on Hash (0 = free);
/// Ready is release-published after the stack words are written, so readers
/// that observe Ready == 1 see a complete stack. The counters are
/// independent relaxed atomics — exports see a racy-but-consistent-enough
/// snapshot, exact at quiescence.
struct alignas(CacheLineSize) SiteSlot {
  std::atomic<std::uint64_t> Hash{0};
  std::atomic<std::uint32_t> Ready{0};
  std::uint32_t Depth = 0;
  void *Pcs[MaxStackDepth] = {};
  /// Raw sampled counts (what the gperftools text export carries; pprof
  /// un-samples them using the rate in the header).
  std::atomic<std::uint64_t> SampledLiveObjs{0};
  std::atomic<std::uint64_t> SampledLiveBytes{0};
  std::atomic<std::uint64_t> SampledTotalObjs{0};
  std::atomic<std::uint64_t> SampledTotalBytes{0};
  /// Unbiased estimates of the *true* counts (each sample of a B-byte object
  /// stands for ~Rate/B objects).
  std::atomic<std::uint64_t> EstLiveObjs{0};
  std::atomic<std::uint64_t> EstLiveBytes{0};
  std::atomic<std::uint64_t> EstTotalObjs{0};
  std::atomic<std::uint64_t> EstTotalBytes{0};
};

/// Read-only view of one site passed to forEachSite callbacks.
struct SiteView {
  const void *const *Pcs;
  unsigned Depth;
  std::uint64_t SampledLiveObjs, SampledLiveBytes;
  std::uint64_t SampledTotalObjs, SampledTotalBytes;
  std::uint64_t EstLiveObjs, EstLiveBytes;
  std::uint64_t EstTotalObjs, EstTotalBytes;
};

/// Snapshot of the profiler's aggregate counters (sums over the site table
/// plus the global drop counters). Exact when the allocator is quiescent.
struct ProfileStats {
  std::uint64_t RateBytes = 0;
  std::uint64_t Samples = 0;
  std::uint64_t SampledLiveObjs = 0, SampledLiveBytes = 0;
  std::uint64_t SampledTotalObjs = 0, SampledTotalBytes = 0;
  std::uint64_t EstLiveObjs = 0, EstLiveBytes = 0;
  std::uint64_t EstTotalObjs = 0, EstTotalBytes = 0;
  std::uint64_t DroppedSiteSamples = 0;
  std::uint64_t DroppedLiveSamples = 0;
  std::uint64_t SitesInUse = 0, SiteCapacity = 0;
  std::uint64_t LiveEntries = 0, LiveCapacity = 0;
};

class HeapProfiler {
public:
  explicit HeapProfiler(const ProfilerOptions &O);
  ~HeapProfiler();
  HeapProfiler(const HeapProfiler &) = delete;
  HeapProfiler &operator=(const HeapProfiler &) = delete;

  /// False if the backing tables could not be mapped; the owner must then
  /// destroy the profiler and run unprofiled.
  bool valid() const { return SiteSlots != nullptr; }

  /// Hot-path hook: called after every successful allocation with the
  /// payload pointer and the *requested* byte count. The common (unsampled)
  /// case is a relaxed load, subtract, and relaxed store on the thread's own
  /// cache-line-private slot — deliberately NOT an atomic RMW, whose lock
  /// prefix would cost more than the rest of a fast-path malloc combined.
  /// Threads beyond MaxProfilerThreads share slots, so a decrement can be
  /// lost to a racing twin; that only perturbs one interval draw, and the
  /// geometric re-arm keeps the estimates unbiased (same caveat the
  /// fetch_sub version had, where shared-slot countdowns drifted instead).
  void onAlloc(void *Ptr, std::size_t ReqBytes) {
    ThreadState &S = Threads[threadIndex() & (MaxProfilerThreads - 1)];
    const std::int64_t B =
        static_cast<std::int64_t>(ReqBytes != 0 ? ReqBytes : 1);
    const std::int64_t C = S.Countdown.load(std::memory_order_relaxed);
    if (LFM_LIKELY(C > B)) {
      S.Countdown.store(C - B, std::memory_order_relaxed);
      return;
    }
    recordSample(S, Ptr, ReqBytes);
  }

  /// Hot-path hook: called at the top of every deallocation. Gated on the
  /// live-entry count: when no sampled allocation is live anywhere — the
  /// steady state of alloc-free-pair workloads — the whole hook is one
  /// relaxed load of a rarely-written counter. The gate cannot miss a
  /// tracked pointer: insertLive() increments LiveEntries before
  /// release-publishing the key, inserts complete before allocate()
  /// returns, and handing a pointer to another thread for freeing requires
  /// user-level synchronization that carries the increment along. With live
  /// sampled data present, the first probe still hits an empty slot for all
  /// but the ~1/Rate tracked pointers.
  void onFree(void *Ptr) {
    if (LFM_LIKELY(LiveEntries.load(std::memory_order_relaxed) == 0))
      return;
    const std::uintptr_t Key = reinterpret_cast<std::uintptr_t>(Ptr);
    std::size_t I = hashPtr(Key) & LiveMask;
    for (unsigned P = 0; P < LiveProbeLimit; ++P) {
      const std::uintptr_t K = LiveKeys[I].load(std::memory_order_acquire);
      if (LFM_LIKELY(K == 0))
        return; // never inserted: slots never return to 0, so the probe
                // chain for Key cannot continue past an empty slot
      if (K == Key) {
        removeLiveAt(I, Key);
        return;
      }
      I = (I + 1) & LiveMask;
    }
  }

  /// Aggregate counters; see ProfileStats.
  ProfileStats totals() const;

  /// Invokes F(const SiteView &) for every fully published site.
  template <typename Fn> void forEachSite(Fn &&F) const {
    for (std::uint32_t I = 0; I < SiteCap; ++I) {
      const SiteSlot &S = SiteSlots[I];
      if (S.Hash.load(std::memory_order_acquire) == 0 ||
          S.Ready.load(std::memory_order_acquire) == 0)
        continue;
      SiteView V;
      V.Pcs = S.Pcs;
      V.Depth = S.Depth;
      V.SampledLiveObjs = S.SampledLiveObjs.load(std::memory_order_relaxed);
      V.SampledLiveBytes = S.SampledLiveBytes.load(std::memory_order_relaxed);
      V.SampledTotalObjs = S.SampledTotalObjs.load(std::memory_order_relaxed);
      V.SampledTotalBytes =
          S.SampledTotalBytes.load(std::memory_order_relaxed);
      V.EstLiveObjs = S.EstLiveObjs.load(std::memory_order_relaxed);
      V.EstLiveBytes = S.EstLiveBytes.load(std::memory_order_relaxed);
      V.EstTotalObjs = S.EstTotalObjs.load(std::memory_order_relaxed);
      V.EstTotalBytes = S.EstTotalBytes.load(std::memory_order_relaxed);
      F(static_cast<const SiteView &>(V));
    }
  }

  /// Estimated live requested bytes / live block-footprint bytes currently
  /// attributed to small size class \p Class (or LargeClassBucket). Feeds the
  /// topology inspector's internal-fragmentation ratios.
  std::uint64_t classLiveEstReqBytes(unsigned Class) const {
    return ClassLiveReqBytes[Class].load(std::memory_order_relaxed);
  }
  std::uint64_t classLiveEstBlockBytes(unsigned Class) const {
    return ClassLiveBlockBytes[Class].load(std::memory_order_relaxed);
  }

  /// `lfm-heapprofile-v1` JSON. Uses stdio (may allocate through the
  /// instrumented allocator for the stream's own buffer — that is a real
  /// allocation and is deliberately *not* inside the reentry guard). Not
  /// async-signal-safe; use writeHeapText from signal handlers.
  void writeJson(std::FILE *Out) const;

  /// gperftools-compatible `heap profile:` text (heap_v2 sampling header +
  /// MAPPED_LIBRARIES from /proc/self/maps). Raw-fd, malloc-free,
  /// async-signal-safe. \returns 0 on success.
  int writeHeapText(int Fd) const;

  /// Human-readable surviving-allocation report for atexit/LFM_LEAK_REPORT.
  /// Raw-fd, malloc-free, async-signal-safe.
  void writeLeakReport(int Fd) const;

  /// Bytes mapped for the profiler's own tables (site table + live map);
  /// kept out of the instrumented allocator's space accounting.
  PageStats storageStats() const { return TablePages.stats(); }

  std::uint64_t rateBytes() const { return Rate; }
  std::uint64_t seed() const { return Seed; }
  std::uint32_t siteCapacity() const { return SiteCap; }
  std::uint32_t liveCapacity() const { return LiveCap; }

private:
  struct alignas(CacheLineSize) ThreadState {
    std::atomic<std::int64_t> Countdown{0};
    std::atomic<std::uint64_t> Rng{1};
  };

  /// Live-map key sentinels. Real payload pointers are never this small.
  static constexpr std::uintptr_t BusyKey = 1;
  static constexpr std::uintptr_t TombKey = 2;

  static std::uint64_t hashPtr(std::uintptr_t P) {
    std::uint64_t X = static_cast<std::uint64_t>(P);
    X ^= X >> 33;
    X *= 0xFF51AFD7ED558CCDull;
    X ^= X >> 33;
    X *= 0xC4CEB9FE1A85EC53ull;
    X ^= X >> 33;
    return X;
  }

  __attribute__((noinline)) void recordSample(ThreadState &S, void *Ptr,
                                              std::size_t ReqBytes);
  __attribute__((noinline)) void removeLiveAt(std::size_t I,
                                              std::uintptr_t Key);

  std::int64_t nextIntervalBytes(ThreadState &S);
  SiteSlot *findOrClaimSite(const void *const *Pcs, unsigned Depth);
  bool insertLive(std::uintptr_t Key, std::uint32_t Site, std::uint64_t Req,
                  std::uint64_t EstObjs);

  /// Which per-class bucket a request of \p Req bytes lands in for this
  /// instance, and the block footprint backing it.
  unsigned classBucketFor(std::uint64_t Req) const;
  std::uint64_t blockFootprint(unsigned Bucket, std::uint64_t Req) const;

  std::uint64_t Rate;
  std::uint64_t Seed;
  unsigned InstanceClassCount;
  std::uint32_t SiteCap = 0, SiteMask = 0;
  std::uint32_t LiveCap = 0, LiveMask = 0;

  /// Backing for the site table and live map; private so the instrumented
  /// allocator's bytes-from-OS accounting (§4.2.5) stays honest.
  PageAllocator TablePages;
  void *TableBase = nullptr;
  std::size_t TableBytes = 0;

  SiteSlot *SiteSlots = nullptr;
  /// Live map, struct-of-arrays so free-path probing touches only key words.
  /// Key states: 0 empty (never reused), BusyKey (payload being written or
  /// read), TombKey (removed, reusable), else the payload pointer. Payload
  /// words are release-published by storing the real key last.
  std::atomic<std::uintptr_t> *LiveKeys = nullptr;
  std::atomic<std::uint64_t> *LiveReq = nullptr;
  std::atomic<std::uint64_t> *LiveEstObjs = nullptr;
  std::atomic<std::uint32_t> *LiveSite = nullptr;

  std::atomic<std::uint64_t> Samples{0};
  std::atomic<std::uint64_t> DroppedSiteSamples{0};
  std::atomic<std::uint64_t> DroppedLiveSamples{0};
  std::atomic<std::uint64_t> SitesInUse{0};
  std::atomic<std::uint64_t> LiveEntries{0};

  /// Estimated live payload vs block-footprint bytes per small size class
  /// (+1 large bucket) for internal-fragmentation reporting.
  std::atomic<std::uint64_t> ClassLiveReqBytes[NumSizeClasses + 1] = {};
  std::atomic<std::uint64_t> ClassLiveBlockBytes[NumSizeClasses + 1] = {};

  ThreadState Threads[MaxProfilerThreads];
};

} // namespace profiling
} // namespace lfm

#endif // LFMALLOC_PROFILING_HEAPPROFILER_H
