//===- profiling/HeapTopology.h - Live heap-topology snapshot ----*- C++ -*-==//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data model and JSON writer for the heap-topology inspector. The walk
/// itself lives in LFAllocator (it needs the descriptor internals); this
/// header defines the snapshot it fills in and the `lfm-heaptopology-v1`
/// serializer, shared by `heapTopologyJson()`, `malloc_info()`, and
/// bench_space's fragmentation columns.
///
/// Every block in the allocator points at its superblock descriptor, and all
/// descriptors ever minted live in a walkable chunk list, so occupancy and
/// fragmentation are readable lock-free without stopping the world: the walk
/// takes racy relaxed snapshots of each descriptor's anchor word. Numbers
/// are exact when the allocator is quiescent and best-effort (each
/// superblock individually consistent, cross-superblock skew possible) while
/// it is running.
///
/// Fragmentation definitions (scalloc/OOPSLA'15 terminology):
///  - internal: requested payload bytes vs the block bytes backing them —
///    only measurable with the sampling profiler attached, since the
///    allocator does not store request sizes;
///  - external: free block bytes held inside non-empty superblocks (plus
///    per-superblock header slack) vs total superblock bytes.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_PROFILING_HEAPTOPOLOGY_H
#define LFMALLOC_PROFILING_HEAPTOPOLOGY_H

#include "lfmalloc/LargeBackend.h"
#include "lfmalloc/SizeClasses.h"
#include "os/PageAllocator.h"

#include <cstddef>
#include <cstdint>
#include <cstdio>

namespace lfm {
namespace profiling {

/// Occupancy histogram resolution: bucket i holds superblocks with
/// [i*10, (i+1)*10)% of their blocks in use (bucket 9 includes 100%).
inline constexpr unsigned TopoOccBuckets = 10;

struct ClassTopology {
  std::uint32_t BlockSize = 0; ///< Block size including the 8-byte prefix.
  std::uint64_t Superblocks = 0;
  std::uint64_t ActiveSbs = 0;
  std::uint64_t FullSbs = 0;
  std::uint64_t PartialSbs = 0;
  std::uint64_t TotalBlocks = 0;
  std::uint64_t UsedBlocks = 0;
  /// Blocks parked in thread-cache magazines or the per-class depot:
  /// "allocated" from the anchors' view but not live application memory.
  /// Already subtracted from UsedBlocks, so cached blocks never read as
  /// heap leaks.
  std::uint64_t CachedBlocks = 0;
  std::uint64_t OccHist[TopoOccBuckets] = {};
  /// Estimated live requested/block bytes from the sampling profiler; zero
  /// when no profiler is attached.
  std::uint64_t LiveEstReqBytes = 0;
  std::uint64_t LiveEstBlockBytes = 0;

  std::uint64_t freeBlocks() const { return TotalBlocks - UsedBlocks; }

  /// Free-block + header-slack bytes over total superblock bytes for this
  /// class; 0 when the class owns no superblocks.
  double externalFragRatio(std::size_t SuperblockBytes) const {
    const double SbBytes =
        static_cast<double>(Superblocks) * static_cast<double>(SuperblockBytes);
    if (SbBytes <= 0)
      return 0.0;
    const double UsedBytes =
        static_cast<double>(UsedBlocks) * static_cast<double>(BlockSize);
    return 1.0 - UsedBytes / SbBytes;
  }

  /// 1 - requested/backing bytes per the profiler's live estimates; 0 when
  /// nothing sampled.
  double internalFragRatio() const {
    if (LiveEstBlockBytes == 0)
      return 0.0;
    return 1.0 - static_cast<double>(LiveEstReqBytes) /
                     static_cast<double>(LiveEstBlockBytes);
  }
};

struct TopologySnapshot {
  unsigned ClassCount = 0; ///< Small classes served by this instance.
  std::size_t SuperblockBytes = 0;
  ClassTopology Classes[NumSizeClasses];
  std::uint64_t TotalSuperblocks = 0;
  std::uint64_t TotalBlocks = 0;
  std::uint64_t TotalUsedBlocks = 0;
  /// Total magazine+depot-resident blocks (see ClassTopology::CachedBlocks).
  std::uint64_t TcacheCachedBlocks = 0;
  std::uint64_t CachedSuperblocks = 0; ///< Empty, parked in SuperblockCache.
  std::uint64_t RetainedBytes = 0; ///< Bytes of cached (retained) superblocks.
  /// Cached superblocks whose pages were returned to the OS (madvise) but
  /// whose address ranges are still on the free list.
  std::uint64_t DecommittedSuperblocks = 0;
  std::uint64_t ParkedHyperblocks = 0; ///< Fully-collected, decommitted hypers.
  std::uint64_t RetainMaxBytes = 0;    ///< Watermark config (~0: unlimited).
  std::int64_t RetainDecayMs = -1;     ///< Decay config (<0: disabled).
  std::uint64_t DescriptorsMinted = 0;
  PageStats Space = {}; ///< The instance's bytes-from-OS accounting.
  /// Large-backend census (the "large_backend" JSON section): selection
  /// flag, span/byte meters, and free-block counts by order. All-zero
  /// with Buddy=false under the os-direct backend.
  LargeBackendSnapshot LargeBackendState = {};
  bool ProfilerAttached = false;
  /// Large-path live estimates (profiler), outside the class array.
  std::uint64_t LargeLiveEstReqBytes = 0;
  std::uint64_t LargeLiveEstBlockBytes = 0;

  /// Aggregate external fragmentation across all classes.
  double externalFragRatio() const {
    double SbBytes = 0, UsedBytes = 0;
    for (unsigned C = 0; C < ClassCount; ++C) {
      SbBytes += static_cast<double>(Classes[C].Superblocks) *
                 static_cast<double>(SuperblockBytes);
      UsedBytes += static_cast<double>(Classes[C].UsedBlocks) *
                   static_cast<double>(Classes[C].BlockSize);
    }
    return SbBytes > 0 ? 1.0 - UsedBytes / SbBytes : 0.0;
  }

  /// Aggregate internal fragmentation (small classes + large bucket) from
  /// the profiler's live estimates; 0 when no profiler is attached.
  double internalFragRatio() const {
    double Req = static_cast<double>(LargeLiveEstReqBytes);
    double Block = static_cast<double>(LargeLiveEstBlockBytes);
    for (unsigned C = 0; C < ClassCount; ++C) {
      Req += static_cast<double>(Classes[C].LiveEstReqBytes);
      Block += static_cast<double>(Classes[C].LiveEstBlockBytes);
    }
    return Block > 0 ? 1.0 - Req / Block : 0.0;
  }
};

/// One superblock in the address-ordered heap map.
struct SbMapEntry {
  std::uintptr_t Addr = 0;
  std::uint32_t BlockSize = 0;
  std::uint32_t MaxCount = 0;
  std::uint32_t Used = 0;
  std::uint8_t State = 0; ///< SbState numeric value at snapshot time.
};

/// Human-readable SbState name for the map entries.
const char *sbStateLabel(std::uint8_t State);

/// Serializes `lfm-heaptopology-v1`. \p Map may be null (no heap_map emitted
/// beyond an empty array); \p TruncatedCount reports superblocks that did
/// not fit the map's fixed capacity.
void writeTopologyJson(const TopologySnapshot &T, const SbMapEntry *Map,
                       std::size_t MapCount, std::uint64_t TruncatedCount,
                       std::FILE *Out);

} // namespace profiling
} // namespace lfm

#endif // LFMALLOC_PROFILING_HEAPTOPOLOGY_H
