//===- profiling/HeapProfiler.cpp - Sampling heap profiler ----------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "profiling/HeapProfiler.h"

#include "profiling/FdWriter.h"
#include "profiling/StackTrace.h"
#include "telemetry/JsonWriter.h"

#include <cmath>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

using namespace lfm;
using namespace lfm::profiling;

thread_local unsigned lfm::profiling::detail::ProfilerReentryDepth = 0;

namespace {

std::uint32_t roundUpPow2(std::uint32_t V) {
  if (V < 2)
    return 2;
  std::uint32_t P = 1;
  while (P < V)
    P <<= 1;
  return P;
}

/// splitmix64: turns (seed, slot) into a well-mixed per-slot RNG state.
std::uint64_t mixSeed(std::uint64_t Seed, std::uint64_t Slot) {
  std::uint64_t X = Seed + (Slot + 1) * 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  X = X ^ (X >> 31);
  return X != 0 ? X : 1;
}

/// FNV-1a over the stack words; forced odd so 0 stays the "free slot"
/// sentinel.
std::uint64_t hashStack(const void *const *Pcs, unsigned Depth) {
  std::uint64_t H = 0xCBF29CE484222325ull;
  for (unsigned I = 0; I < Depth; ++I) {
    std::uint64_t W = reinterpret_cast<std::uintptr_t>(Pcs[I]);
    for (unsigned B = 0; B < 8; ++B) {
      H ^= (W >> (B * 8)) & 0xFF;
      H *= 0x100000001B3ull;
    }
  }
  return H | 1;
}

} // namespace

HeapProfiler::HeapProfiler(const ProfilerOptions &O)
    : Rate(O.RateBytes != 0 ? O.RateBytes : 1), Seed(O.Seed),
      InstanceClassCount(O.ClassCount < NumSizeClasses ? O.ClassCount
                                                       : NumSizeClasses) {
  SiteCap = roundUpPow2(O.SiteCapacity);
  LiveCap = roundUpPow2(O.LiveCapacity);
  SiteMask = SiteCap - 1;
  LiveMask = LiveCap - 1;

  const std::size_t SiteBytes = std::size_t{SiteCap} * sizeof(SiteSlot);
  const std::size_t KeyBytes =
      std::size_t{LiveCap} * sizeof(std::atomic<std::uintptr_t>);
  const std::size_t ReqBytes =
      std::size_t{LiveCap} * sizeof(std::atomic<std::uint64_t>);
  const std::size_t EstBytes = ReqBytes;
  const std::size_t SiteIdxBytes =
      std::size_t{LiveCap} * sizeof(std::atomic<std::uint32_t>);
  TableBytes = alignUp(SiteBytes + KeyBytes + ReqBytes + EstBytes +
                           SiteIdxBytes,
                       OsPageSize);
  TableBase = TablePages.map(TableBytes);
  if (TableBase == nullptr)
    return; // !valid(); owner tears us down and runs unprofiled

  // The mapping is zero pages, which is exactly the value-initialized state
  // of these trivially-layout atomics and of SiteSlot, so the arrays can be
  // used in place without running constructors (no placement-new loop over
  // megabytes of table at startup).
  char *P = static_cast<char *>(TableBase);
  SiteSlots = reinterpret_cast<SiteSlot *>(P);
  P += SiteBytes;
  LiveKeys = reinterpret_cast<std::atomic<std::uintptr_t> *>(P);
  P += KeyBytes;
  LiveReq = reinterpret_cast<std::atomic<std::uint64_t> *>(P);
  P += ReqBytes;
  LiveEstObjs = reinterpret_cast<std::atomic<std::uint64_t> *>(P);
  P += EstBytes;
  LiveSite = reinterpret_cast<std::atomic<std::uint32_t> *>(P);

  // Seed every thread slot up front so sampling is deterministic in the
  // seed and the slot index alone, independent of thread arrival order.
  for (unsigned I = 0; I < MaxProfilerThreads; ++I) {
    ThreadState &S = Threads[I];
    S.Rng.store(mixSeed(Seed, I), std::memory_order_relaxed);
    S.Countdown.store(nextIntervalBytes(S), std::memory_order_relaxed);
  }
}

HeapProfiler::~HeapProfiler() {
  if (TableBase != nullptr)
    TablePages.unmap(TableBase, TableBytes);
}

std::int64_t HeapProfiler::nextIntervalBytes(ThreadState &S) {
  // xorshift64* — one multiply, no state tables, fine statistical quality
  // for interval draws.
  std::uint64_t X = S.Rng.load(std::memory_order_relaxed);
  X ^= X >> 12;
  X ^= X << 25;
  X ^= X >> 27;
  S.Rng.store(X, std::memory_order_relaxed);
  const std::uint64_t R = X * 0x2545F4914F6CDD1Dull;
  // U uniform in [0,1); inverse-CDF of the exponential gives the geometric
  // byte gap with mean Rate.
  const double U = static_cast<double>(R >> 11) * 0x1.0p-53;
  double Gap = -std::log1p(-U) * static_cast<double>(Rate);
  const double MaxGap = 64.0 * static_cast<double>(Rate);
  if (!(Gap >= 1.0))
    Gap = 1.0;
  if (Gap > MaxGap)
    Gap = MaxGap;
  return static_cast<std::int64_t>(Gap);
}

unsigned HeapProfiler::classBucketFor(std::uint64_t Req) const {
  const unsigned C = sizeToClass(static_cast<std::size_t>(Req));
  return C >= InstanceClassCount ? LargeClassBucket : C;
}

std::uint64_t HeapProfiler::blockFootprint(unsigned Bucket,
                                           std::uint64_t Req) const {
  if (Bucket < NumSizeClasses)
    return classBlockSize(Bucket);
  // Large path: one page-aligned mapping holding prefix + payload.
  return alignUp(Req + BlockPrefixSize, OsPageSize);
}

SiteSlot *HeapProfiler::findOrClaimSite(const void *const *Pcs,
                                        unsigned Depth) {
  const std::uint64_t H = hashStack(Pcs, Depth);
  std::size_t I = H & SiteMask;
  for (unsigned P = 0; P < SiteProbeLimit; ++P) {
    SiteSlot &S = SiteSlots[I];
    std::uint64_t Cur = S.Hash.load(std::memory_order_acquire);
    if (Cur == H)
      return &S; // 64-bit stack hashes; collision odds are negligible
    if (Cur == 0) {
      if (S.Hash.compare_exchange_strong(Cur, H, std::memory_order_acq_rel)) {
        S.Depth = Depth;
        for (unsigned J = 0; J < Depth; ++J)
          S.Pcs[J] = const_cast<void *>(Pcs[J]);
        S.Ready.store(1, std::memory_order_release);
        SitesInUse.fetch_add(1, std::memory_order_relaxed);
        return &S;
      }
      if (Cur == H)
        return &S; // lost the claim race to a twin of ourselves
    }
    I = (I + 1) & SiteMask;
  }
  return nullptr;
}

bool HeapProfiler::insertLive(std::uintptr_t Key, std::uint32_t Site,
                              std::uint64_t Req, std::uint64_t EstObjs) {
  std::size_t I = hashPtr(Key) & LiveMask;
  for (unsigned P = 0; P < LiveProbeLimit; ++P) {
    std::uintptr_t K = LiveKeys[I].load(std::memory_order_relaxed);
    if (K == 0 || K == TombKey) {
      if (LiveKeys[I].compare_exchange_strong(K, BusyKey,
                                              std::memory_order_acquire)) {
        LiveSite[I].store(Site, std::memory_order_relaxed);
        LiveReq[I].store(Req, std::memory_order_relaxed);
        LiveEstObjs[I].store(EstObjs, std::memory_order_relaxed);
        // The count rises before the key is published: onFree's empty-map
        // fast path may skip probing only when no observable key exists, so
        // any thread able to see this key must also see LiveEntries != 0.
        LiveEntries.fetch_add(1, std::memory_order_relaxed);
        // Publishing the real key last makes the payload words visible to
        // any thread that later observes the key (acquire on the free path).
        LiveKeys[I].store(Key, std::memory_order_release);
        return true;
      }
    }
    I = (I + 1) & LiveMask;
  }
  return false;
}

void HeapProfiler::recordSample(ThreadState &S, void *Ptr,
                                std::size_t ReqBytes) {
  ReentryGuard Guard;
  S.Countdown.store(nextIntervalBytes(S), std::memory_order_relaxed);
  Samples.fetch_add(1, std::memory_order_relaxed);

  const std::uint64_t B = ReqBytes != 0 ? ReqBytes : 1;
  const std::uint64_t EstObjs = Rate / B != 0 ? Rate / B : 1;
  const std::uint64_t EstBytes = EstObjs * B;

  void *Pcs[MaxStackDepth];
  // Skip captureStack and recordSample itself: the leaf frame reported is
  // allocate()'s caller (both are noinline so the skip count holds).
  const unsigned Depth = captureStack(Pcs, MaxStackDepth, 2);

  SiteSlot *Site = findOrClaimSite(Pcs, Depth);
  if (Site == nullptr) {
    DroppedSiteSamples.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Site->SampledTotalObjs.fetch_add(1, std::memory_order_relaxed);
  Site->SampledTotalBytes.fetch_add(B, std::memory_order_relaxed);
  Site->EstTotalObjs.fetch_add(EstObjs, std::memory_order_relaxed);
  Site->EstTotalBytes.fetch_add(EstBytes, std::memory_order_relaxed);

  const std::uint32_t SiteIdx =
      static_cast<std::uint32_t>(Site - SiteSlots);
  if (!insertLive(reinterpret_cast<std::uintptr_t>(Ptr), SiteIdx, B,
                  EstObjs)) {
    // Live counters are only advanced when the map accepted the entry, so a
    // full map can never manufacture phantom leaks — it just undercounts
    // live data, and says so through this counter.
    DroppedLiveSamples.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Site->SampledLiveObjs.fetch_add(1, std::memory_order_relaxed);
  Site->SampledLiveBytes.fetch_add(B, std::memory_order_relaxed);
  Site->EstLiveObjs.fetch_add(EstObjs, std::memory_order_relaxed);
  Site->EstLiveBytes.fetch_add(EstBytes, std::memory_order_relaxed);

  const unsigned Bucket = classBucketFor(B);
  ClassLiveReqBytes[Bucket].fetch_add(EstObjs * B,
                                      std::memory_order_relaxed);
  ClassLiveBlockBytes[Bucket].fetch_add(EstObjs * blockFootprint(Bucket, B),
                                        std::memory_order_relaxed);
}

void HeapProfiler::removeLiveAt(std::size_t I, std::uintptr_t Key) {
  // Claim the slot by parking it at BusyKey; inserters skip Busy slots, so
  // the payload words stay ours to read. The allocator cannot hand this
  // address out again until deallocate() (our caller) finishes, so no
  // same-key race exists; a stalled thread here delays only this one slot.
  if (!LiveKeys[I].compare_exchange_strong(Key, BusyKey,
                                           std::memory_order_acquire))
    return; // lost to a concurrent state change; entry was not ours
  ReentryGuard Guard;
  const std::uint32_t SiteIdx = LiveSite[I].load(std::memory_order_relaxed);
  const std::uint64_t Req = LiveReq[I].load(std::memory_order_relaxed);
  const std::uint64_t EstObjs =
      LiveEstObjs[I].load(std::memory_order_relaxed);
  LiveKeys[I].store(TombKey, std::memory_order_release);
  LiveEntries.fetch_sub(1, std::memory_order_relaxed);

  const std::uint64_t B = Req != 0 ? Req : 1;
  SiteSlot &S = SiteSlots[SiteIdx & SiteMask];
  S.SampledLiveObjs.fetch_sub(1, std::memory_order_relaxed);
  S.SampledLiveBytes.fetch_sub(B, std::memory_order_relaxed);
  S.EstLiveObjs.fetch_sub(EstObjs, std::memory_order_relaxed);
  S.EstLiveBytes.fetch_sub(EstObjs * B, std::memory_order_relaxed);

  const unsigned Bucket = classBucketFor(B);
  ClassLiveReqBytes[Bucket].fetch_sub(EstObjs * B,
                                      std::memory_order_relaxed);
  ClassLiveBlockBytes[Bucket].fetch_sub(EstObjs * blockFootprint(Bucket, B),
                                        std::memory_order_relaxed);
}

ProfileStats HeapProfiler::totals() const {
  ProfileStats T;
  T.RateBytes = Rate;
  T.Samples = Samples.load(std::memory_order_relaxed);
  T.DroppedSiteSamples = DroppedSiteSamples.load(std::memory_order_relaxed);
  T.DroppedLiveSamples = DroppedLiveSamples.load(std::memory_order_relaxed);
  T.SitesInUse = SitesInUse.load(std::memory_order_relaxed);
  T.SiteCapacity = SiteCap;
  T.LiveEntries = LiveEntries.load(std::memory_order_relaxed);
  T.LiveCapacity = LiveCap;
  forEachSite([&T](const SiteView &V) {
    T.SampledLiveObjs += V.SampledLiveObjs;
    T.SampledLiveBytes += V.SampledLiveBytes;
    T.SampledTotalObjs += V.SampledTotalObjs;
    T.SampledTotalBytes += V.SampledTotalBytes;
    T.EstLiveObjs += V.EstLiveObjs;
    T.EstLiveBytes += V.EstLiveBytes;
    T.EstTotalObjs += V.EstTotalObjs;
    T.EstTotalBytes += V.EstTotalBytes;
  });
  return T;
}

void HeapProfiler::writeJson(std::FILE *Out) const {
  telemetry::JsonWriter W(Out);
  W.beginObject();
  W.field("schema", "lfm-heapprofile-v1");
  W.field("enabled", true);
  W.key("config");
  W.beginObject();
  W.field("rate_bytes", Rate);
  W.field("seed", Seed);
  W.field("site_capacity", std::uint64_t{SiteCap});
  W.field("live_capacity", std::uint64_t{LiveCap});
  W.field("max_stack_depth", std::uint64_t{MaxStackDepth});
  W.endObject();

  const ProfileStats T = totals();
  W.key("totals");
  W.beginObject();
  W.field("samples", T.Samples);
  W.field("sampled_live_objects", T.SampledLiveObjs);
  W.field("sampled_live_bytes", T.SampledLiveBytes);
  W.field("sampled_total_objects", T.SampledTotalObjs);
  W.field("sampled_total_bytes", T.SampledTotalBytes);
  W.field("est_live_objects", T.EstLiveObjs);
  W.field("est_live_bytes", T.EstLiveBytes);
  W.field("est_total_objects", T.EstTotalObjs);
  W.field("est_total_bytes", T.EstTotalBytes);
  W.field("dropped_site_samples", T.DroppedSiteSamples);
  W.field("dropped_live_samples", T.DroppedLiveSamples);
  W.field("sites_in_use", T.SitesInUse);
  W.field("live_entries", T.LiveEntries);
  W.endObject();

  W.key("sites");
  W.beginArray();
  forEachSite([&W](const SiteView &V) {
    W.beginObject();
    W.key("stack");
    W.beginArray();
    char Pc[2 + 16 + 1];
    for (unsigned I = 0; I < V.Depth; ++I) {
      std::snprintf(Pc, sizeof(Pc), "0x%llx",
                    static_cast<unsigned long long>(
                        reinterpret_cast<std::uintptr_t>(V.Pcs[I])));
      W.value(static_cast<const char *>(Pc));
    }
    W.endArray();
    W.field("sampled_live_objects", V.SampledLiveObjs);
    W.field("sampled_live_bytes", V.SampledLiveBytes);
    W.field("sampled_total_objects", V.SampledTotalObjs);
    W.field("sampled_total_bytes", V.SampledTotalBytes);
    W.field("est_live_objects", V.EstLiveObjs);
    W.field("est_live_bytes", V.EstLiveBytes);
    W.field("est_total_objects", V.EstTotalObjs);
    W.field("est_total_bytes", V.EstTotalBytes);
    W.endObject();
  });
  W.endArray();
  W.endObject();
  std::fputc('\n', Out);
}

int HeapProfiler::writeHeapText(int Fd) const {
  if (Fd < 0)
    return -1;
  FdWriter W(Fd);
  const ProfileStats T = totals();
  // gperftools heap_v2 header: values are raw sampled counts; pprof divides
  // by the sampling probability derived from the rate after the slash.
  W.str("heap profile: ");
  W.dec(T.SampledLiveObjs);
  W.str(": ");
  W.dec(T.SampledLiveBytes);
  W.str(" [");
  W.dec(T.SampledTotalObjs);
  W.str(": ");
  W.dec(T.SampledTotalBytes);
  W.str("] @ heap_v2/");
  W.dec(Rate);
  W.ch('\n');
  forEachSite([&W](const SiteView &V) {
    W.str("  ");
    W.dec(V.SampledLiveObjs);
    W.str(": ");
    W.dec(V.SampledLiveBytes);
    W.str(" [");
    W.dec(V.SampledTotalObjs);
    W.str(": ");
    W.dec(V.SampledTotalBytes);
    W.str("] @");
    for (unsigned I = 0; I < V.Depth; ++I) {
      W.ch(' ');
      W.hex(reinterpret_cast<std::uintptr_t>(V.Pcs[I]));
    }
    W.ch('\n');
  });
  // pprof resolves symbols against the address-space map appended verbatim.
  W.str("\nMAPPED_LIBRARIES:\n");
  W.flush();
  const int Maps = ::open("/proc/self/maps", O_RDONLY);
  if (Maps >= 0) {
    char Buf[1024];
    ssize_t N;
    while ((N = ::read(Maps, Buf, sizeof(Buf))) > 0) {
      ssize_t Off = 0;
      while (Off < N) {
        const ssize_t Wr = ::write(Fd, Buf + Off, N - Off);
        if (Wr > 0) {
          Off += Wr;
          continue;
        }
        if (Wr < 0 && errno == EINTR)
          continue;
        break;
      }
    }
    ::close(Maps);
  }
  return 0;
}

void HeapProfiler::writeLeakReport(int Fd) const {
  FdWriter W(Fd);
  const ProfileStats T = totals();
  W.str("lfm-leak-report: ");
  W.dec(T.EstLiveObjs);
  W.str(" objects / ");
  W.dec(T.EstLiveBytes);
  W.str(" bytes estimated live at exit (sampled ");
  W.dec(T.SampledLiveObjs);
  W.str(" objects / ");
  W.dec(T.SampledLiveBytes);
  W.str(" bytes, rate=");
  W.dec(Rate);
  W.str(")\n");
  if (T.SampledLiveObjs == 0) {
    W.str("lfm-leak-report: no surviving sampled allocations\n");
    return;
  }
  forEachSite([&W](const SiteView &V) {
    if (V.SampledLiveObjs == 0)
      return;
    W.str("leak: ");
    W.dec(V.EstLiveObjs);
    W.str(" objs ");
    W.dec(V.EstLiveBytes);
    W.str(" bytes (sampled ");
    W.dec(V.SampledLiveObjs);
    W.str(") @");
    for (unsigned I = 0; I < V.Depth; ++I) {
      W.ch(' ');
      W.hex(reinterpret_cast<std::uintptr_t>(V.Pcs[I]));
    }
    W.ch('\n');
  });
  if (T.DroppedLiveSamples != 0) {
    W.str("lfm-leak-report: ");
    W.dec(T.DroppedLiveSamples);
    W.str(" sampled allocations untracked (live map full); live totals are "
          "a lower bound\n");
  }
}
