//===- trace/AllocTrace.h - Allocation flight recorder -----------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocation flight recorder: captures every malloc / free / calloc /
/// realloc / aligned operation the LD_PRELOAD shim sees into lock-free
/// per-thread append buffers and streams them to an `lfm-alloctrace-v1`
/// file (trace/TraceFormat.h), so any preloaded workload becomes a
/// reproducible benchmark (bench_replay, docs/OBSERVABILITY.md).
///
/// Design, mirroring the PR 5 StatsExporter discipline:
///  - The hot hooks are a single relaxed load + predicted-false branch
///    when idle, and when recording they append to a buffer only this
///    thread writes — no locks, no allocation, no syscalls. Buffers come
///    from a bounded mmap'd pool; when the pool is exhausted ops are
///    *dropped and accounted* (per-thread counters folded into in-stream
///    Dropped records plus a global total), never silently lost.
///  - A background writer thread drains full buffers and sweeps partial
///    ones every ~50 ms, writing to `<path>.tmp`; stopRecording() (or the
///    atexit hook) flushes everything and atomically renames to `<path>`.
///  - pthread_atfork: the child resets to "not recording" — it has no
///    writer thread and must not interleave writes into the parent's file.
///  - requestAsyncFlush() is a bare atomic store, safe from signal
///    handlers (the shim's SIGUSR2 handler uses it); the writer honours
///    it on its next wakeup.
///
/// The address→token remap lives in a lock-free fixed-capacity hash table
/// updated *before* the underlying free and *after* the underlying alloc,
/// so a block's address can never be recycled to another thread while the
/// map still holds its old token.
///
/// Restart caveat: stopRecording() cannot wait for hooks already past the
/// `recording()` check on other threads; a start() immediately after a
/// stop() under heavy traffic may let a handful of stragglers from the old
/// session into the new file. The reader is tolerant by construction and
/// start() inserts a short grace period; quiesce threads for exact traces.
///
/// Compiled out entirely by LFM_ALLOC_TRACE=0 (trace/TraceConfig.h): every
/// function below becomes an empty inline stub and AllocTrace.cpp defines
/// zero symbols.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TRACE_ALLOCTRACE_H
#define LFMALLOC_TRACE_ALLOCTRACE_H

#include "trace/TraceConfig.h"

#include <cerrno>
#include <cstddef>
#include <cstdint>

#if LFM_ALLOC_TRACE
#include "support/Platform.h"
#include "trace/TraceFormat.h"

#include <atomic>
#endif

namespace lfm {
namespace trace {

/// Point-in-time recorder health, for `trace.*` ctl keys and the
/// lfm-metrics-v2 exposition. Ops/Dropped reset at each startRecording().
struct RecorderStats {
  bool Recording = false;
  std::uint64_t Ops = 0;          ///< Records durably encoded.
  std::uint64_t Dropped = 0;      ///< Ops lost (buffers full / token table).
  std::uint64_t BytesWritten = 0; ///< Payload + framing bytes on disk.
  std::uint64_t Flushes = 0;      ///< Writer passes completed.
};

#if LFM_ALLOC_TRACE

namespace detail {
extern std::atomic<bool> Active;
void recordAlloc(OpKind K, void *Ptr, std::uint64_t SizeA, std::uint64_t SizeB);
void recordFree(void *Ptr);
std::uint64_t reallocErase(void *OldPtr);
void reallocRecord(void *OldPtr, std::uint64_t OldTok, void *NewPtr,
                   std::uint64_t Bytes);
} // namespace detail

/// True while a recording session is active (one relaxed load).
inline bool recording() {
  return detail::Active.load(std::memory_order_relaxed);
}

/// Shim hooks. Call the alloc-side hooks *after* the underlying operation
/// (the result pointer is part of the record) and onFree / beforeRealloc
/// *before* it (the address→token mapping must be erased before the
/// allocator can hand the address to another thread).
inline void onMalloc(void *Ptr, std::size_t Bytes) {
  if (LFM_UNLIKELY(recording()))
    detail::recordAlloc(OpKind::Malloc, Ptr, Bytes, 0);
}
inline void onCalloc(void *Ptr, std::size_t Num, std::size_t Size) {
  if (LFM_UNLIKELY(recording())) {
    const std::uint64_t Total =
        (Size != 0 && Num > ~std::uint64_t{0} / Size)
            ? ~std::uint64_t{0}
            : static_cast<std::uint64_t>(Num) * Size;
    detail::recordAlloc(OpKind::Calloc, Ptr, Total, 0);
  }
}
inline void onAlignedAlloc(void *Ptr, std::size_t Alignment,
                           std::size_t Bytes) {
  if (LFM_UNLIKELY(recording()))
    detail::recordAlloc(OpKind::AlignedAlloc, Ptr, Alignment, Bytes);
}
inline void onFree(void *Ptr) {
  if (LFM_UNLIKELY(recording() && Ptr != nullptr))
    detail::recordFree(Ptr);
}
/// \returns the old block's token (0 when unknown/null), erased from the
/// map so the allocator may recycle the address.
inline std::uint64_t beforeRealloc(void *OldPtr) {
  if (LFM_UNLIKELY(recording() && OldPtr != nullptr))
    return detail::reallocErase(OldPtr);
  return 0;
}
/// Records the realloc. On failure (NewPtr null) the old block is still
/// live: its mapping is restored under the same token.
inline void afterRealloc(void *OldPtr, std::uint64_t OldTok, void *NewPtr,
                         std::size_t Bytes) {
  if (LFM_UNLIKELY(recording()))
    detail::reallocRecord(OldPtr, OldTok, NewPtr, Bytes);
}

/// Starts recording to \p Path (written as `<Path>.tmp` until stop).
/// \p BufferKb bounds the append-buffer pool (0: keep the current/default
/// budget). \returns 0 or an errno value (EALREADY when recording, EINVAL
/// on a bad path, EIO when the file cannot be created).
int startRecording(const char *Path, std::uint64_t BufferKb);

/// Flushes everything reachable and atomically publishes `<Path>`.
/// \returns 0, or EALREADY when no recording is active.
int stopRecording();

/// Runs one synchronous writer pass (drain + sweep) on the caller's
/// thread. \returns 0, or EALREADY when no recording is active.
int flushNow();

/// Asks the writer thread to flush on its next wakeup. Async-signal-safe:
/// one atomic store, no locks.
void requestAsyncFlush();

/// \returns a racy-but-consistent-enough snapshot of recorder health.
RecorderStats recorderStats();

#else // !LFM_ALLOC_TRACE

inline bool recording() { return false; }
inline void onMalloc(void *, std::size_t) {}
inline void onCalloc(void *, std::size_t, std::size_t) {}
inline void onAlignedAlloc(void *, std::size_t, std::size_t) {}
inline void onFree(void *) {}
inline std::uint64_t beforeRealloc(void *) { return 0; }
inline void afterRealloc(void *, std::uint64_t, void *, std::size_t) {}
inline int startRecording(const char *, std::uint64_t) { return ENOENT; }
inline int stopRecording() { return ENOENT; }
inline int flushNow() { return ENOENT; }
inline void requestAsyncFlush() {}
inline RecorderStats recorderStats() { return {}; }

#endif // LFM_ALLOC_TRACE

} // namespace trace
} // namespace lfm

#endif // LFMALLOC_TRACE_ALLOCTRACE_H
