//===- trace/TraceFormat.h - lfm-alloctrace-v1 wire format -------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `lfm-alloctrace-v1` binary trace format, shared by the recorder
/// (trace/AllocTrace.cpp) and the reader (trace/TraceReader.cpp).
///
/// File layout (all integers are unsigned LEB128 varints unless noted):
///
///   magic     8 raw bytes "LFMATRC1"
///   version   varint (1)
///   flags     varint (0; reserved)
///   start_ns  varint (CLOCK_MONOTONIC at recording start, informational)
///   chunk*    until EOF
///
/// Each chunk is one flushed segment of one thread's append buffer:
///
///   tid       varint  dense thread index (support/ThreadRegistry.h)
///   seq       varint  per-thread buffer sequence number
///   len       varint  payload byte count
///   payload   len raw bytes: whole op records, never split
///
/// Chunks of different threads interleave freely and chunks of one thread
/// may appear out of seq order (the background writer flushes partially
/// filled buffers); a reader groups payload bytes by tid, orders groups by
/// seq, and concatenates. Within that per-thread stream each record is:
///
///   opcode    1 raw byte (OpKind)
///   Malloc / Calloc:   dt_ns, size, token
///   AlignedAlloc:      dt_ns, align, size, token
///   Realloc:           dt_ns, old_token, size, new_token
///   Free:              dt_ns, token
///   Dropped:           count          (no timestamp)
///
/// dt_ns is the nanosecond delta since the thread's previous record
/// (support/CycleClock.h ticks, converted at record time). Tokens are a
/// dense remap of block addresses: every successful allocation draws the
/// next value from a process-wide counter starting at 1, and a free names
/// the token its pointer mapped to. Token 0 means "no block": a failed
/// allocation, or a pointer the recorder never saw (allocated before
/// recording started, or lost to token-table overflow). Traces therefore
/// contain no raw pointers and replay independently of address-space
/// layout. Dropped records make buffer exhaustion visible in-stream: the
/// recorder never loses ops silently.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TRACE_TRACEFORMAT_H
#define LFMALLOC_TRACE_TRACEFORMAT_H

#include <cstddef>
#include <cstdint>

namespace lfm {
namespace trace {

inline constexpr char FormatMagic[8] = {'L', 'F', 'M', 'A', 'T', 'R', 'C', '1'};
inline constexpr std::uint64_t FormatVersion = 1;

/// Record opcodes. The value is the raw opcode byte.
enum class OpKind : std::uint8_t {
  Malloc = 0,       ///< malloc(size) -> token
  Calloc = 1,       ///< calloc(n, s) recorded as one size = n*s -> token
  Realloc = 2,      ///< realloc(old_token, size) -> new_token
  AlignedAlloc = 3, ///< aligned_alloc/posix_memalign/memalign/valloc/pvalloc
  Free = 4,         ///< free(token)
  Dropped = 5,      ///< `count` ops were lost to buffer exhaustion here
};
inline constexpr unsigned NumOpKinds = 6;

/// Longest LEB128 encoding of a uint64_t.
inline constexpr std::size_t MaxVarintBytes = 10;

/// Upper bound on one encoded record (opcode + four varints) plus a
/// preceding Dropped record; the appender seals a buffer when less than
/// this remains so records never straddle chunks.
inline constexpr std::size_t MaxRecordBytes =
    (1 + 4 * MaxVarintBytes) + (1 + MaxVarintBytes);

/// Encodes \p V as LEB128 into \p P (capacity >= MaxVarintBytes).
/// \returns bytes written.
inline std::size_t putVarint(std::uint8_t *P, std::uint64_t V) {
  std::size_t N = 0;
  while (V >= 0x80) {
    P[N++] = static_cast<std::uint8_t>(V) | 0x80;
    V >>= 7;
  }
  P[N++] = static_cast<std::uint8_t>(V);
  return N;
}

/// Bounds-checked LEB128 decode. \returns bytes consumed, or 0 when the
/// input is truncated or overlong (never reads past \p Avail).
inline std::size_t getVarint(const std::uint8_t *P, std::size_t Avail,
                             std::uint64_t &V) {
  V = 0;
  unsigned Shift = 0;
  const std::size_t Lim = Avail < MaxVarintBytes ? Avail : MaxVarintBytes;
  for (std::size_t N = 0; N < Lim; ++N) {
    const std::uint8_t B = P[N];
    V |= static_cast<std::uint64_t>(B & 0x7f) << Shift;
    if ((B & 0x80) == 0)
      return N + 1;
    Shift += 7;
  }
  return 0;
}

} // namespace trace
} // namespace lfm

#endif // LFMALLOC_TRACE_TRACEFORMAT_H
