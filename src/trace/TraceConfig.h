//===- trace/TraceConfig.h - Compile-time flight-recorder gate ---*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one compile-time switch for the allocation flight recorder.
///
/// LFM_ALLOC_TRACE == 1 (the default): the shim can capture every
/// malloc/free/calloc/realloc/aligned operation into lock-free per-thread
/// append buffers and stream them to an `lfm-alloctrace-v1` file
/// (trace/AllocTrace.h). When no recording is active the cost is one
/// predicted-false branch on a cached atomic per shim entry point.
///
/// LFM_ALLOC_TRACE == 0: the recorder translation unit compiles to nothing
/// (CI checks AllocTrace.cpp.o defines zero symbols), every hook in the
/// shim is an empty inline, and the `trace.start/stop/flush` ctl keys
/// report ENOENT. The read-only echo keys (`trace.path`, `trace.status`,
/// ...) keep resolving so the env↔ctl registry invariant holds in every
/// configuration.
///
/// Build with -DLFM_ALLOC_TRACE=0 (CMake: -DLFMALLOC_TRACE=OFF) to select
/// the recorder-free configuration. The trace *reader* and the replay
/// machinery are consumer-side tools and are not gated.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TRACE_TRACECONFIG_H
#define LFMALLOC_TRACE_TRACECONFIG_H

#ifndef LFM_ALLOC_TRACE
#define LFM_ALLOC_TRACE 1
#endif

#endif // LFMALLOC_TRACE_TRACECONFIG_H
