//===- trace/AllocTrace.cpp - Allocation flight recorder ------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// See AllocTrace.h for the design. Invariants the code below maintains:
//
//  - Appending is per-thread single-writer: a thread owns exactly one
//    chunk at a time, writes payload bytes plainly, and publishes them
//    with one release store of the chunk's Used counter. The background
//    writer reads Used with acquire and flushes only the published prefix,
//    so it never observes a torn record.
//  - Records never straddle chunks (a chunk is sealed when fewer than
//    MaxRecordBytes remain), so every flushed segment parses standalone.
//  - Chunks circulate through tagged-index Treiber stacks (free list,
//    full queue); the 32-bit tag in the packed head makes pop ABA-safe.
//  - All writer-side work (drain + sweep) is serialized by IoMu, so the
//    file sees one writer even when `trace.flush` runs a pass inline.
//  - The address→token map is erased *before* the underlying free and
//    inserted *after* the underlying alloc (shim hook ordering), so a
//    recycled address can never alias a stale token.
//
//===----------------------------------------------------------------------===//

#include "trace/AllocTrace.h"

#if LFM_ALLOC_TRACE

#include "support/CycleClock.h"
#include "support/ThreadRegistry.h"
#include "support/Timing.h"
#include "trace/TraceFormat.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <pthread.h>
#include <sys/mman.h>
#include <unistd.h>

using namespace lfm;
using namespace lfm::trace;

namespace {

constexpr std::uint32_t InvalidIdx = ~0u;
constexpr std::uint32_t ChunkPayloadBytes = 64 * 1024;
constexpr unsigned MaxTraceThreads = 1024;
constexpr std::uint64_t DefaultBufferKb = 8192;
constexpr std::uint64_t MinBufferKb = 128;      // two chunks
constexpr std::uint64_t MaxBufferKb = 1u << 20; // 1 GiB
constexpr std::size_t TokenMapCapacity = std::size_t{1} << 18;
constexpr unsigned TokenMaxProbes = 128;
constexpr std::size_t PathCap = 4096;
constexpr std::uint64_t WriterTickMs = 25;
constexpr std::uint64_t WriterPassMs = 200;

/// One append buffer. The payload follows the header in the pool mapping;
/// Used is the single-writer/multi-reader publication point, Flushed is
/// private to the (IoMu-serialized) writer side.
struct Chunk {
  std::atomic<std::uint32_t> Used{0};
  std::uint32_t Flushed = 0;
  std::uint32_t Tid = 0;
  std::uint32_t Seq = 0;
  std::uint32_t NextLink = InvalidIdx; ///< Free-/full-list link (index).
};
constexpr std::size_t ChunkStride =
    (sizeof(Chunk) + 63 + ChunkPayloadBytes) & ~std::size_t{63};

struct TokenEntry {
  std::atomic<std::uintptr_t> Key{0};
  std::atomic<std::uint64_t> Tok{0};
};
constexpr std::uintptr_t EmptyKey = 0;
constexpr std::uintptr_t TombKey = 1;

// --- process-wide recorder state -----------------------------------------

pthread_mutex_t Mu = PTHREAD_MUTEX_INITIALIZER;   // control/lifecycle
pthread_mutex_t IoMu = PTHREAD_MUTEX_INITIALIZER; // writer passes
pthread_cond_t Cv;
bool CvInitialized = false;
bool Running = false;
bool StopRequested = false;
bool HandlersInstalled = false;
bool EverStarted = false;
pthread_t Writer;
int Fd = -1;
char FinalPath[PathCap];
char TmpPath[PathCap + 8];

std::uint8_t *Pool = nullptr;
std::size_t PoolBytes = 0;
std::uint32_t ChunkCount = 0;
TokenEntry *TokenMap = nullptr;

std::atomic<std::uint64_t> FreeHead{~std::uint64_t{0}};
std::atomic<std::uint64_t> FullHead{~std::uint64_t{0}};
std::atomic<std::uint32_t> ActiveChunk[MaxTraceThreads];

std::atomic<std::uint64_t> SessionEpoch{0};
std::atomic<std::uint64_t> SessionStartTicks{0};
std::atomic<std::uint64_t> NextToken{1};
std::atomic<std::uint64_t> RecordedOps{0};
std::atomic<std::uint64_t> DroppedTotal{0};
std::atomic<std::uint64_t> BytesWritten{0};
std::atomic<std::uint64_t> FlushPasses{0};
std::atomic<bool> FlushRequested{false};

struct ThreadState {
  std::uint64_t Epoch = 0;
  std::uint64_t LastTicks = 0;
  std::uint32_t CurIdx = InvalidIdx;
  std::uint32_t NextSeq = 0;
  std::uint32_t PendingDrops = 0;
};
thread_local ThreadState TLS;

// --- chunk pool ----------------------------------------------------------

Chunk *chunkAt(std::uint32_t Idx) {
  return reinterpret_cast<Chunk *>(Pool + std::size_t{Idx} * ChunkStride);
}
std::uint8_t *payloadOf(Chunk *C) {
  return reinterpret_cast<std::uint8_t *>(C) + (ChunkStride - ChunkPayloadBytes);
}

std::uint64_t packHead(std::uint32_t Idx, std::uint32_t Tag) {
  return (std::uint64_t{Tag} << 32) | Idx;
}
std::uint32_t headIdx(std::uint64_t H) { return static_cast<std::uint32_t>(H); }
std::uint32_t headTag(std::uint64_t H) {
  return static_cast<std::uint32_t>(H >> 32);
}

void stackPush(std::atomic<std::uint64_t> &Head, std::uint32_t Idx) {
  std::uint64_t H = Head.load(std::memory_order_relaxed);
  for (;;) {
    chunkAt(Idx)->NextLink = headIdx(H);
    if (Head.compare_exchange_weak(H, packHead(Idx, headTag(H) + 1),
                                   std::memory_order_acq_rel,
                                   std::memory_order_relaxed))
      return;
  }
}

std::uint32_t stackPop(std::atomic<std::uint64_t> &Head) {
  std::uint64_t H = Head.load(std::memory_order_acquire);
  for (;;) {
    const std::uint32_t Idx = headIdx(H);
    if (Idx == InvalidIdx)
      return InvalidIdx;
    const std::uint32_t Next = chunkAt(Idx)->NextLink;
    if (Head.compare_exchange_weak(H, packHead(Next, headTag(H) + 1),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire))
      return Idx;
  }
}

/// (Re)maps the chunk pool for a \p BudgetKb payload budget. Only called
/// with Mu held and no recording running.
int ensurePool(std::uint64_t BudgetKb) {
  const auto Want =
      static_cast<std::uint32_t>(BudgetKb * 1024 / ChunkPayloadBytes);
  const std::uint32_t Count = Want < 2 ? 2 : Want;
  if (Pool != nullptr && Count == ChunkCount)
    return 0;
  if (Pool != nullptr) {
    ::munmap(Pool, PoolBytes);
    Pool = nullptr;
  }
  const std::size_t Bytes = std::size_t{Count} * ChunkStride;
  void *M = ::mmap(nullptr, Bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (M == MAP_FAILED)
    return ENOMEM;
  Pool = static_cast<std::uint8_t *>(M);
  PoolBytes = Bytes;
  ChunkCount = Count;
  return 0;
}

/// Rebuilds the free list from scratch and clears all publication slots.
/// Only called with Mu held while Active is false.
void resetPool() {
  FreeHead.store(~std::uint64_t{0}, std::memory_order_relaxed);
  FullHead.store(~std::uint64_t{0}, std::memory_order_relaxed);
  for (auto &Slot : ActiveChunk)
    Slot.store(InvalidIdx, std::memory_order_relaxed);
  for (std::uint32_t I = 0; I < ChunkCount; ++I) {
    Chunk *C = new (chunkAt(I)) Chunk();
    C->Used.store(0, std::memory_order_relaxed);
    stackPush(FreeHead, I);
  }
}

int ensureTokenMap() {
  if (TokenMap != nullptr)
    return 0;
  void *M = ::mmap(nullptr, TokenMapCapacity * sizeof(TokenEntry),
                   PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (M == MAP_FAILED)
    return ENOMEM;
  TokenMap = new (M) TokenEntry[TokenMapCapacity];
  return 0;
}

void clearTokenMap() {
  for (std::size_t I = 0; I < TokenMapCapacity; ++I) {
    TokenMap[I].Key.store(EmptyKey, std::memory_order_relaxed);
    TokenMap[I].Tok.store(0, std::memory_order_relaxed);
  }
}

// --- address→token map ---------------------------------------------------

std::size_t hashPtr(std::uintptr_t Key) {
  return static_cast<std::size_t>(((Key >> 4) * 0x9E3779B97F4A7C15ull) >> 24) &
         (TokenMapCapacity - 1);
}

bool tokenInsertWith(void *P, std::uint64_t Tok) {
  const auto Key = reinterpret_cast<std::uintptr_t>(P);
  const std::size_t H = hashPtr(Key);
  for (unsigned Probe = 0; Probe < TokenMaxProbes; ++Probe) {
    TokenEntry &E = TokenMap[(H + Probe) & (TokenMapCapacity - 1)];
    std::uintptr_t K = E.Key.load(std::memory_order_relaxed);
    if (K == Key) {
      // Stale slot for the same address (its free record was lost);
      // reusing it keeps the map consistent going forward.
      E.Tok.store(Tok, std::memory_order_release);
      return true;
    }
    if (K == EmptyKey || K == TombKey) {
      if (E.Key.compare_exchange_strong(K, Key, std::memory_order_acq_rel)) {
        E.Tok.store(Tok, std::memory_order_release);
        return true;
      }
      if (K == Key) {
        E.Tok.store(Tok, std::memory_order_release);
        return true;
      }
      // Lost the slot to a different key; keep probing.
    }
  }
  return false;
}

std::uint64_t tokenAssign(void *P) {
  const std::uint64_t Tok = NextToken.fetch_add(1, std::memory_order_relaxed);
  if (tokenInsertWith(P, Tok))
    return Tok;
  // Table overflow: the op is still recorded but its alloc/free edge is
  // lost (token 0). Accounted — replay will treat the block as untracked.
  DroppedTotal.fetch_add(1, std::memory_order_relaxed);
  return 0;
}

std::uint64_t tokenErase(void *P) {
  const auto Key = reinterpret_cast<std::uintptr_t>(P);
  const std::size_t H = hashPtr(Key);
  for (unsigned Probe = 0; Probe < TokenMaxProbes; ++Probe) {
    TokenEntry &E = TokenMap[(H + Probe) & (TokenMapCapacity - 1)];
    const std::uintptr_t K = E.Key.load(std::memory_order_acquire);
    if (K == EmptyKey)
      return 0; // Not present (allocated before recording, or overflowed).
    if (K == Key) {
      const std::uint64_t Tok = E.Tok.load(std::memory_order_acquire);
      E.Key.store(TombKey, std::memory_order_release);
      return Tok;
    }
  }
  return 0;
}

// --- appending -----------------------------------------------------------

Chunk *rotateChunk(ThreadState &TS, std::uint32_t Tid) {
  const std::uint32_t NewIdx = stackPop(FreeHead);
  if (NewIdx == InvalidIdx)
    return nullptr;
  Chunk *N = chunkAt(NewIdx);
  N->Tid = Tid;
  N->Seq = TS.NextSeq++;
  const std::uint32_t OldIdx = TS.CurIdx;
  TS.CurIdx = NewIdx;
  // Publish the fresh chunk before queueing the sealed one so the writer
  // never drains-and-recycles a chunk that is still the published slot.
  ActiveChunk[Tid].store(NewIdx, std::memory_order_release);
  if (OldIdx != InvalidIdx)
    stackPush(FullHead, OldIdx);
  return N;
}

void emit(OpKind K, const std::uint64_t *Vals, unsigned NVals) {
  const std::uint32_t Tid = threadIndex();
  ThreadState &TS = TLS;
  const std::uint64_t E = SessionEpoch.load(std::memory_order_relaxed);
  if (TS.Epoch != E) {
    TS.Epoch = E;
    TS.CurIdx = InvalidIdx;
    TS.NextSeq = 0;
    TS.PendingDrops = 0;
    TS.LastTicks = SessionStartTicks.load(std::memory_order_relaxed);
  }
  if (Tid >= MaxTraceThreads) {
    DroppedTotal.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Chunk *C = TS.CurIdx != InvalidIdx ? chunkAt(TS.CurIdx) : nullptr;
  std::uint32_t Used = C ? C->Used.load(std::memory_order_relaxed) : 0;
  if (C == nullptr || ChunkPayloadBytes - Used < MaxRecordBytes) {
    C = rotateChunk(TS, Tid);
    Used = 0;
    if (C == nullptr) {
      // Pool exhausted: the writer has not recycled fast enough. Count
      // the loss here and in-stream once space returns.
      ++TS.PendingDrops;
      DroppedTotal.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  const std::uint64_t NowT = cycleclock::now();
  const std::uint64_t Dt = NowT > TS.LastTicks
                               ? cycleclock::ticksToNanos(NowT - TS.LastTicks)
                               : 0;
  if (NowT > TS.LastTicks)
    TS.LastTicks = NowT;
  std::uint8_t *P = payloadOf(C) + Used;
  std::size_t N = 0;
  if (TS.PendingDrops != 0) {
    P[N++] = static_cast<std::uint8_t>(OpKind::Dropped);
    N += putVarint(P + N, TS.PendingDrops);
    TS.PendingDrops = 0;
  }
  P[N++] = static_cast<std::uint8_t>(K);
  N += putVarint(P + N, Dt);
  for (unsigned I = 0; I < NVals; ++I)
    N += putVarint(P + N, Vals[I]);
  C->Used.store(Used + static_cast<std::uint32_t>(N),
                std::memory_order_release);
  RecordedOps.fetch_add(1, std::memory_order_relaxed);
}

// --- writer side ---------------------------------------------------------

bool writeAll(int F, const void *Buf, std::size_t Len) {
  const char *P = static_cast<const char *>(Buf);
  while (Len > 0) {
    const ssize_t W = ::write(F, P, Len);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += W;
    Len -= static_cast<std::size_t>(W);
  }
  return true;
}

/// Writes the unflushed published prefix of \p C as one framed segment.
/// Writer-side only (IoMu held).
void flushChunk(Chunk *C) {
  std::uint32_t Used = C->Used.load(std::memory_order_acquire);
  if (Used > ChunkPayloadBytes)
    Used = ChunkPayloadBytes; // Straggler clobber; clamp, reader tolerates.
  if (Used <= C->Flushed)
    return;
  std::uint8_t Hdr[3 * MaxVarintBytes];
  std::size_t N = putVarint(Hdr, C->Tid);
  N += putVarint(Hdr + N, C->Seq);
  N += putVarint(Hdr + N, Used - C->Flushed);
  if (!writeAll(Fd, Hdr, N) ||
      !writeAll(Fd, payloadOf(C) + C->Flushed, Used - C->Flushed))
    return; // Disk trouble: leave Flushed so a later pass retries.
  BytesWritten.fetch_add(N + (Used - C->Flushed), std::memory_order_relaxed);
  C->Flushed = Used;
}

/// One writer pass: drain sealed chunks (recycling them), then sweep the
/// published prefix of every live thread's current chunk. IoMu held.
void drainPass() {
  for (;;) {
    const std::uint32_t Idx = stackPop(FullHead);
    if (Idx == InvalidIdx)
      break;
    Chunk *C = chunkAt(Idx);
    flushChunk(C);
    C->Flushed = 0;
    C->Used.store(0, std::memory_order_relaxed);
    stackPush(FreeHead, Idx);
  }
  const std::uint32_t Live = threadIndexWatermark();
  const std::uint32_t Lim = Live < MaxTraceThreads ? Live : MaxTraceThreads;
  for (std::uint32_t T = 0; T < Lim; ++T) {
    const std::uint32_t Idx = ActiveChunk[T].load(std::memory_order_acquire);
    if (Idx != InvalidIdx)
      flushChunk(chunkAt(Idx));
  }
  FlushPasses.fetch_add(1, std::memory_order_relaxed);
}

void ensureCv() {
  if (CvInitialized)
    return;
  pthread_condattr_t Attr;
  pthread_condattr_init(&Attr);
  pthread_condattr_setclock(&Attr, CLOCK_MONOTONIC);
  pthread_cond_init(&Cv, &Attr);
  pthread_condattr_destroy(&Attr);
  CvInitialized = true;
}

void *writerMain(void *) {
  pthread_mutex_lock(&Mu);
  std::uint64_t LastPass = monotonicNanos();
  while (!StopRequested) {
    timespec Deadline;
    clock_gettime(CLOCK_MONOTONIC, &Deadline);
    Deadline.tv_nsec += static_cast<long>(WriterTickMs * 1'000'000);
    if (Deadline.tv_nsec >= 1'000'000'000) {
      Deadline.tv_sec += 1;
      Deadline.tv_nsec -= 1'000'000'000;
    }
    int RC = 0;
    while (!StopRequested && RC != ETIMEDOUT)
      RC = pthread_cond_timedwait(&Cv, &Mu, &Deadline);
    if (StopRequested)
      break;
    const bool Flush = FlushRequested.exchange(false);
    const std::uint64_t Now = monotonicNanos();
    if (!Flush && Now - LastPass < WriterPassMs * 1'000'000)
      continue;
    LastPass = Now;
    pthread_mutex_unlock(&Mu);
    pthread_mutex_lock(&IoMu);
    drainPass();
    pthread_mutex_unlock(&IoMu);
    pthread_mutex_lock(&Mu);
  }
  pthread_mutex_unlock(&Mu);
  // Final catch-up so stopRecording() joins a writer whose last pass saw
  // the stop-side quiesce.
  pthread_mutex_lock(&IoMu);
  drainPass();
  pthread_mutex_unlock(&IoMu);
  return nullptr;
}

void stopAtExit() { trace::stopRecording(); }

// fork() integration, StatsExporter-style: hold both locks across the
// fork; the child has no writer thread and must never write into the
// parent's trace file, so it resets to "not recording".
void atforkPrepare() {
  pthread_mutex_lock(&Mu);
  pthread_mutex_lock(&IoMu);
}
void atforkParent() {
  pthread_mutex_unlock(&IoMu);
  pthread_mutex_unlock(&Mu);
}
void atforkChild() {
  pthread_mutex_init(&Mu, nullptr);
  pthread_mutex_init(&IoMu, nullptr);
  CvInitialized = false;
  trace::detail::Active.store(false, std::memory_order_relaxed);
  Running = false;
  StopRequested = false;
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
}

} // namespace

// --- public surface ------------------------------------------------------

namespace lfm {
namespace trace {

namespace detail {

std::atomic<bool> Active{false};

void recordAlloc(OpKind K, void *Ptr, std::uint64_t SizeA,
                 std::uint64_t SizeB) {
  const std::uint64_t Tok = Ptr != nullptr ? tokenAssign(Ptr) : 0;
  if (K == OpKind::AlignedAlloc) {
    const std::uint64_t V[3] = {SizeA, SizeB, Tok};
    emit(K, V, 3);
  } else {
    const std::uint64_t V[2] = {SizeA, Tok};
    emit(K, V, 2);
  }
}

void recordFree(void *Ptr) {
  const std::uint64_t V[1] = {tokenErase(Ptr)};
  emit(OpKind::Free, V, 1);
}

std::uint64_t reallocErase(void *OldPtr) { return tokenErase(OldPtr); }

void reallocRecord(void *OldPtr, std::uint64_t OldTok, void *NewPtr,
                   std::uint64_t Bytes) {
  std::uint64_t NewTok = 0;
  if (NewPtr != nullptr) {
    NewTok = tokenAssign(NewPtr);
  } else if (Bytes != 0 && OldPtr != nullptr && OldTok != 0) {
    // Failed grow: the old block is still live; restore its mapping under
    // the same token. (realloc(p, 0) frees and returns null — the reader
    // distinguishes that by Bytes == 0 and treats it as a free.)
    tokenInsertWith(OldPtr, OldTok);
  }
  const std::uint64_t V[3] = {OldTok, Bytes, NewTok};
  emit(OpKind::Realloc, V, 3);
}

} // namespace detail

int startRecording(const char *Path, std::uint64_t BufferKb) {
  if (Path == nullptr || *Path == '\0')
    return EINVAL;
  const std::size_t PLen = std::strlen(Path);
  if (PLen >= PathCap - 1)
    return EINVAL;
  pthread_mutex_lock(&Mu);
  if (Running) {
    pthread_mutex_unlock(&Mu);
    return EALREADY;
  }
  cycleclock::calibrate();
  std::uint64_t Kb = BufferKb != 0 ? BufferKb : DefaultBufferKb;
  if (Kb < MinBufferKb)
    Kb = MinBufferKb;
  if (Kb > MaxBufferKb)
    Kb = MaxBufferKb;
  int Rc = ensurePool(Kb);
  if (Rc == 0)
    Rc = ensureTokenMap();
  if (Rc != 0) {
    pthread_mutex_unlock(&Mu);
    return Rc;
  }
  std::memcpy(FinalPath, Path, PLen + 1);
  std::snprintf(TmpPath, sizeof(TmpPath), "%s.tmp", FinalPath);
  Fd = ::open(TmpPath, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (Fd < 0) {
    pthread_mutex_unlock(&Mu);
    return EIO;
  }
  // New session: bump the epoch (stale thread-local chunk state resets on
  // the next hook), give stragglers from a prior session a beat to leave
  // the append path, then rebuild the pool and the token map.
  SessionEpoch.fetch_add(1, std::memory_order_relaxed);
  if (EverStarted) {
    const timespec Grace = {0, 2'000'000}; // 2 ms
    nanosleep(&Grace, nullptr);
  }
  EverStarted = true;
  resetPool();
  clearTokenMap();
  NextToken.store(1, std::memory_order_relaxed);
  RecordedOps.store(0, std::memory_order_relaxed);
  DroppedTotal.store(0, std::memory_order_relaxed);
  BytesWritten.store(0, std::memory_order_relaxed);
  FlushPasses.store(0, std::memory_order_relaxed);
  FlushRequested.store(false, std::memory_order_relaxed);
  SessionStartTicks.store(cycleclock::now(), std::memory_order_relaxed);

  std::uint8_t Hdr[sizeof(FormatMagic) + 3 * MaxVarintBytes];
  std::memcpy(Hdr, FormatMagic, sizeof(FormatMagic));
  std::size_t N = sizeof(FormatMagic);
  N += putVarint(Hdr + N, FormatVersion);
  N += putVarint(Hdr + N, 0); // flags
  N += putVarint(Hdr + N, monotonicNanos());
  if (!writeAll(Fd, Hdr, N)) {
    ::close(Fd);
    Fd = -1;
    pthread_mutex_unlock(&Mu);
    return EIO;
  }
  BytesWritten.store(N, std::memory_order_relaxed);

  StopRequested = false;
  ensureCv();
  Rc = pthread_create(&Writer, nullptr, writerMain, nullptr);
  if (Rc != 0) {
    ::close(Fd);
    Fd = -1;
    pthread_mutex_unlock(&Mu);
    return Rc;
  }
  Running = true;
  if (!HandlersInstalled) {
    HandlersInstalled = true;
    pthread_atfork(atforkPrepare, atforkParent, atforkChild);
    std::atexit(stopAtExit);
  }
  detail::Active.store(true, std::memory_order_release);
  pthread_mutex_unlock(&Mu);
  return 0;
}

int stopRecording() {
  pthread_mutex_lock(&Mu);
  if (!Running) {
    pthread_mutex_unlock(&Mu);
    return EALREADY;
  }
  detail::Active.store(false, std::memory_order_release);
  StopRequested = true;
  pthread_cond_broadcast(&Cv);
  pthread_mutex_unlock(&Mu);
  pthread_join(Writer, nullptr);
  pthread_mutex_lock(&Mu);
  // One more pass after the join: catches records published between the
  // writer's final pass and Active going false.
  pthread_mutex_lock(&IoMu);
  drainPass();
  pthread_mutex_unlock(&IoMu);
  ::close(Fd);
  Fd = -1;
  ::rename(TmpPath, FinalPath); // Atomic publication, exporter-style.
  Running = false;
  StopRequested = false;
  pthread_mutex_unlock(&Mu);
  return 0;
}

int flushNow() {
  pthread_mutex_lock(&Mu);
  if (!Running) {
    pthread_mutex_unlock(&Mu);
    return EALREADY;
  }
  pthread_mutex_lock(&IoMu);
  drainPass();
  pthread_mutex_unlock(&IoMu);
  pthread_mutex_unlock(&Mu);
  return 0;
}

void requestAsyncFlush() {
  FlushRequested.store(true, std::memory_order_relaxed);
}

RecorderStats recorderStats() {
  RecorderStats S;
  S.Recording = detail::Active.load(std::memory_order_relaxed);
  S.Ops = RecordedOps.load(std::memory_order_relaxed);
  S.Dropped = DroppedTotal.load(std::memory_order_relaxed);
  S.BytesWritten = BytesWritten.load(std::memory_order_relaxed);
  S.Flushes = FlushPasses.load(std::memory_order_relaxed);
  return S;
}

} // namespace trace
} // namespace lfm

#endif // LFM_ALLOC_TRACE
