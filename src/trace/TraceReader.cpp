//===- trace/TraceReader.cpp - lfm-alloctrace-v1 reader -------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceReader.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace lfm {
namespace trace {

namespace {

/// Raw payload segments of one thread, keyed by buffer sequence number.
/// The writer may flush one buffer in several prefix increments; segments
/// of the same seq concatenate in file order (offsets only grow).
using SegmentMap = std::map<std::uint64_t, std::vector<std::uint8_t>>;

/// Decodes the concatenated per-thread byte stream into records. A clean
/// cut at a record boundary is normal (partial-buffer sweeps); a cut
/// inside a record marks the stream — and the file — Truncated.
bool decodeStream(const std::vector<std::uint8_t> &Bytes, ThreadStream &Out) {
  std::size_t Pos = 0;
  const std::size_t Len = Bytes.size();
  while (Pos < Len) {
    const std::size_t RecStart = Pos;
    const std::uint8_t Op = Bytes[Pos++];
    if (Op >= NumOpKinds)
      return false; // Garbage opcode: stop decoding this stream.
    TraceOpRec Rec;
    Rec.Kind = static_cast<OpKind>(Op);
    unsigned NVals = 0;
    std::uint64_t Vals[4] = {};
    switch (Rec.Kind) {
    case OpKind::Malloc:
    case OpKind::Calloc:
      NVals = 3; // dt, size, token
      break;
    case OpKind::AlignedAlloc:
      NVals = 4; // dt, align, size, token
      break;
    case OpKind::Realloc:
      NVals = 4; // dt, old_token, size, new_token
      break;
    case OpKind::Free:
      NVals = 2; // dt, token
      break;
    case OpKind::Dropped:
      NVals = 1; // count
      break;
    }
    bool Cut = false;
    for (unsigned I = 0; I < NVals; ++I) {
      const std::size_t N = getVarint(Bytes.data() + Pos, Len - Pos, Vals[I]);
      if (N == 0) {
        Cut = true;
        break;
      }
      Pos += N;
    }
    if (Cut) {
      (void)RecStart;
      return false;
    }
    switch (Rec.Kind) {
    case OpKind::Malloc:
    case OpKind::Calloc:
      Rec.DtNs = Vals[0];
      Rec.Size = Vals[1];
      Rec.Token = Vals[2];
      break;
    case OpKind::AlignedAlloc:
      Rec.DtNs = Vals[0];
      Rec.Align = Vals[1];
      Rec.Size = Vals[2];
      Rec.Token = Vals[3];
      break;
    case OpKind::Realloc:
      Rec.DtNs = Vals[0];
      Rec.OldToken = Vals[1];
      Rec.Size = Vals[2];
      Rec.Token = Vals[3];
      break;
    case OpKind::Free:
      Rec.DtNs = Vals[0];
      Rec.Token = Vals[1];
      break;
    case OpKind::Dropped:
      Rec.Count = Vals[0];
      Out.DroppedInStream += Vals[0];
      break;
    }
    Out.Ops.push_back(Rec);
  }
  return true;
}

TraceFile parse(const std::uint8_t *Data, std::size_t Len) {
  TraceFile F;
  if (Len < sizeof(FormatMagic) ||
      std::memcmp(Data, FormatMagic, sizeof(FormatMagic)) != 0) {
    F.Error = "bad magic (not an lfm-alloctrace file)";
    return F;
  }
  std::size_t Pos = sizeof(FormatMagic);
  std::uint64_t Hdr[3];
  for (auto &V : Hdr) {
    const std::size_t N = getVarint(Data + Pos, Len - Pos, V);
    if (N == 0) {
      F.Error = "truncated header";
      return F;
    }
    Pos += N;
  }
  F.Version = Hdr[0];
  F.Flags = Hdr[1];
  F.StartNs = Hdr[2];
  if (F.Version != FormatVersion) {
    F.Error = "unsupported version";
    return F;
  }

  std::map<std::uint32_t, SegmentMap> ByTid;
  bool Cut = false;
  while (Pos < Len) {
    std::uint64_t Tid, Seq, PLen;
    std::size_t N = getVarint(Data + Pos, Len - Pos, Tid);
    if (N == 0) {
      Cut = true;
      break;
    }
    std::size_t Peek = Pos + N;
    N = getVarint(Data + Peek, Len - Peek, Seq);
    if (N == 0) {
      Cut = true;
      break;
    }
    Peek += N;
    N = getVarint(Data + Peek, Len - Peek, PLen);
    if (N == 0) {
      Cut = true;
      break;
    }
    Peek += N;
    if (Tid > 0xFFFFFF || PLen > (std::uint64_t{1} << 31)) {
      F.Status = ReadStatus::Corrupt;
      F.Error = "implausible chunk header";
      return F;
    }
    if (PLen > Len - Peek) {
      Cut = true; // Chunk body ran past EOF: truncated recording.
      break;
    }
    auto &Seg = ByTid[static_cast<std::uint32_t>(Tid)][Seq];
    Seg.insert(Seg.end(), Data + Peek, Data + Peek + PLen);
    Pos = Peek + static_cast<std::size_t>(PLen);
  }

  F.Status = Cut ? ReadStatus::Truncated : ReadStatus::Ok;
  if (Cut)
    F.Error = "file ends mid-chunk; decoded the clean prefix";
  for (auto &[Tid, Segs] : ByTid) {
    ThreadStream TS;
    TS.Tid = Tid;
    std::vector<std::uint8_t> Bytes;
    for (auto &[Seq, Seg] : Segs)
      Bytes.insert(Bytes.end(), Seg.begin(), Seg.end());
    if (!decodeStream(Bytes, TS) && F.Status == ReadStatus::Ok) {
      F.Status = ReadStatus::Truncated;
      F.Error = "record stream cut mid-record; decoded the clean prefix";
    }
    F.TotalOps += TS.Ops.size();
    // Dropped markers are bookkeeping, not ops.
    for (const auto &R : TS.Ops)
      if (R.Kind == OpKind::Dropped)
        --F.TotalOps;
    F.TotalDropped += TS.DroppedInStream;
    F.Threads.push_back(std::move(TS));
  }
  return F;
}

} // namespace

TraceFile readTraceImage(const std::uint8_t *Data, std::size_t Len) {
  return parse(Data, Len);
}

TraceFile readTraceFile(const char *Path) {
  TraceFile F;
  std::FILE *Fp = std::fopen(Path, "rb");
  if (Fp == nullptr) {
    F.Error = "cannot open file";
    return F;
  }
  std::vector<std::uint8_t> Buf;
  std::uint8_t Tmp[64 * 1024];
  std::size_t N;
  while ((N = std::fread(Tmp, 1, sizeof(Tmp), Fp)) > 0)
    Buf.insert(Buf.end(), Tmp, Tmp + N);
  std::fclose(Fp);
  return parse(Buf.data(), Buf.size());
}

ReplayPlan buildReplayPlan(const TraceFile &File) {
  ReplayPlan Plan;
  Plan.PerThread.resize(File.Threads.size());
  Plan.Leftover.resize(File.Threads.size());
  for (const auto &TS : File.Threads)
    Plan.Tids.push_back(TS.Tid);

  // Pass 1: which slot allocates each token. Needed to suppress frees of
  // never-allocated tokens (their pointer would never be produced) and to
  // count cross-thread edges.
  std::unordered_map<std::uint64_t, std::uint32_t> AllocSlot;
  for (std::size_t Slot = 0; Slot < File.Threads.size(); ++Slot) {
    for (const auto &R : File.Threads[Slot].Ops) {
      std::uint64_t Tok = 0;
      switch (R.Kind) {
      case OpKind::Malloc:
      case OpKind::Calloc:
      case OpKind::AlignedAlloc:
      case OpKind::Realloc:
        Tok = R.Token;
        break;
      default:
        break;
      }
      if (Tok != 0) {
        AllocSlot.emplace(Tok, static_cast<std::uint32_t>(Slot));
        if (Tok > Plan.MaxToken)
          Plan.MaxToken = Tok;
      }
    }
  }

  // Pass 2: lower records to primitive ops, suppressing unsatisfiable
  // frees (unknown token) and double frees.
  std::unordered_set<std::uint64_t> Freed;
  auto addFree = [&](std::size_t Slot, std::uint64_t Tok) {
    if (Tok == 0 || AllocSlot.find(Tok) == AllocSlot.end() ||
        !Freed.insert(Tok).second) {
      ++Plan.SuppressedFrees;
      return;
    }
    Plan.PerThread[Slot].push_back({Tok, 0, false});
    ++Plan.TotalFrees;
    if (AllocSlot[Tok] != Slot)
      ++Plan.CrossThreadFrees;
  };
  auto addAlloc = [&](std::size_t Slot, std::uint64_t Tok, std::uint64_t Sz) {
    if (Tok == 0)
      return; // Failed or untracked allocation: nothing to replay.
    Plan.PerThread[Slot].push_back({Tok, Sz, true});
    ++Plan.TotalAllocs;
  };
  for (std::size_t Slot = 0; Slot < File.Threads.size(); ++Slot) {
    for (const auto &R : File.Threads[Slot].Ops) {
      switch (R.Kind) {
      case OpKind::Malloc:
      case OpKind::Calloc:
      case OpKind::AlignedAlloc:
        addAlloc(Slot, R.Token, R.Size);
        break;
      case OpKind::Realloc:
        // allocate-copy-release order; realloc(p, 0) records Token == 0
        // and Size == 0 and lowers to the free alone.
        addAlloc(Slot, R.Token, R.Size);
        if (R.Token != 0 || R.Size == 0)
          addFree(Slot, R.OldToken);
        break;
      case OpKind::Free:
        addFree(Slot, R.Token);
        break;
      case OpKind::Dropped:
        break;
      }
    }
  }

  // Leftovers: allocated, never freed — released at teardown by the
  // allocating slot.
  for (const auto &[Tok, Slot] : AllocSlot)
    if (Freed.find(Tok) == Freed.end())
      Plan.Leftover[Slot].push_back(Tok);
  for (auto &L : Plan.Leftover)
    std::sort(L.begin(), L.end());
  return Plan;
}

} // namespace trace
} // namespace lfm
