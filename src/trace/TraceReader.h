//===- trace/TraceReader.h - lfm-alloctrace-v1 reader ------------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Consumer-side decoder for `lfm-alloctrace-v1` files (trace/TraceFormat.h)
/// and the replay planner used by bench_replay and the harness.
///
/// The reader regroups interleaved chunks into one ordered op stream per
/// recorded thread (chunks of one thread may hit the file out of sequence
/// order because the background writer also flushes partially filled
/// buffers). It is deliberately tolerant: a truncated tail — the normal
/// shape of a crash-interrupted recording — yields every record up to the
/// cut with Status == Truncated rather than an error.
///
/// Unlike the recorder, this code is ordinary tool code: it allocates,
/// it is not async-signal-safe, and it is not gated by LFM_ALLOC_TRACE.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TRACE_TRACEREADER_H
#define LFMALLOC_TRACE_TRACEREADER_H

#include "trace/TraceFormat.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lfm {
namespace trace {

enum class ReadStatus {
  Ok,        ///< Whole file parsed.
  Truncated, ///< Clean prefix parsed; the tail was cut mid-chunk/record.
  Corrupt,   ///< Bad magic/version or structurally invalid content.
};

/// One decoded record. Fields beyond Kind are meaningful per-opcode (see
/// TraceFormat.h); unused fields read 0.
struct TraceOpRec {
  OpKind Kind = OpKind::Malloc;
  std::uint64_t DtNs = 0;     ///< Nanoseconds since this thread's previous op.
  std::uint64_t Size = 0;     ///< Request bytes (calloc: n*s; realloc: new).
  std::uint64_t Align = 0;    ///< AlignedAlloc only.
  std::uint64_t Token = 0;    ///< Block produced (alloc) or released (free).
  std::uint64_t OldToken = 0; ///< Realloc only: block consumed.
  std::uint64_t Count = 0;    ///< Dropped only: ops lost at this point.
};

/// All records of one recorded thread, in program order.
struct ThreadStream {
  std::uint32_t Tid = 0;
  std::vector<TraceOpRec> Ops;
  std::uint64_t DroppedInStream = 0; ///< Sum of Dropped record counts.
};

struct TraceFile {
  ReadStatus Status = ReadStatus::Corrupt;
  std::string Error; ///< Human-readable detail when Status != Ok.
  std::uint64_t Version = 0;
  std::uint64_t Flags = 0;
  std::uint64_t StartNs = 0;
  std::vector<ThreadStream> Threads; ///< Sorted by Tid.
  std::uint64_t TotalOps = 0;        ///< Non-Dropped records across threads.
  std::uint64_t TotalDropped = 0;    ///< Sum of all Dropped counts.
};

/// Parses \p Path. Always returns a TraceFile; check Status. Truncated
/// results still carry every cleanly decoded record.
TraceFile readTraceFile(const char *Path);

/// Parses an in-memory image (testing convenience; same semantics).
TraceFile readTraceImage(const std::uint8_t *Data, std::size_t Len);

/// One primitive replay action. Reallocs are lowered to Alloc(new token)
/// followed by Free(old token) — the allocate-copy-release order a real
/// realloc performs; aligned allocations and callocs replay as plain
/// allocations of the recorded size (the baseline MallocInterface has no
/// aligned entry point — docs/OBSERVABILITY.md notes the fidelity limits).
struct ReplayOp {
  std::uint64_t Token = 0;
  std::uint64_t Size = 0; ///< Alloc only.
  bool IsAlloc = false;
};

/// A deadlock-free multithreaded replay schedule derived from a trace.
///
/// Cross-thread-free structure is preserved through the tokens: a block
/// allocated on thread A and freed on thread B appears as Alloc on A's
/// list and Free on B's list, and the replayer hands the pointer across
/// via a per-token slot. Frees of tokens with no alloc in the trace
/// (token 0, pre-recording blocks, drop-lost allocs, double frees) are
/// suppressed — counted, never replayed — so no replay thread can wait
/// on a pointer that will never be produced.
struct ReplayPlan {
  std::vector<std::vector<ReplayOp>> PerThread; ///< Indexed by dense tid slot.
  std::vector<std::uint32_t> Tids;              ///< Recorded tid per slot.
  /// Tokens still live at end-of-trace, per allocating slot; the replayer
  /// frees them at teardown so leaked traces don't leak the harness.
  std::vector<std::vector<std::uint64_t>> Leftover;
  std::uint64_t MaxToken = 0;
  std::uint64_t TotalAllocs = 0;
  std::uint64_t TotalFrees = 0;      ///< Frees scheduled (incl. realloc-old).
  std::uint64_t CrossThreadFrees = 0;
  std::uint64_t SuppressedFrees = 0;
};

ReplayPlan buildReplayPlan(const TraceFile &File);

} // namespace trace
} // namespace lfm

#endif // LFMALLOC_TRACE_TRACEREADER_H
