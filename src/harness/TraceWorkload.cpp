//===- harness/TraceWorkload.cpp - Synthetic application traces -----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "harness/TraceWorkload.h"

#include "support/Barrier.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <cassert>
#include <cstring>
#include <thread>

using namespace lfm;

const char *lfm::traceProfileName(TraceProfile Profile) {
  switch (Profile) {
  case TraceProfile::WebServer:
    return "web-server";
  case TraceProfile::Scientific:
    return "scientific";
  case TraceProfile::DataMining:
    return "data-mining";
  }
  assert(false && "unknown profile");
  return "?";
}

namespace {

/// Rough log-normal-ish size: product of a base and a heavy-tailed
/// multiplier (occasionally large enough to cross into the large path).
std::uint32_t heavyTailSize(XorShift128 &Rng) {
  std::uint32_t Size = 16 + static_cast<std::uint32_t>(Rng.nextBounded(64));
  while (Rng.nextBounded(4) == 0 && Size < (1u << 16))
    Size *= 3;
  return Size;
}

void generateWebServer(XorShift128 &Rng, Trace &T, std::uint32_t NumOps) {
  // Slots [0, 64): long-lived "sessions" (160-2000 B), churned rarely.
  // Slots [64, SlotCount): short-lived "requests" (16-512 B), bursty.
  const std::uint32_t Sessions = 64;
  std::uint32_t I = 0;
  while (I < NumOps) {
    if (Rng.nextBounded(32) == 0) {
      // Session churn.
      T.Ops.push_back(
          {static_cast<std::uint32_t>(Rng.nextBounded(Sessions)),
           static_cast<std::uint32_t>(Rng.nextInRange(160, 2000))});
      ++I;
      continue;
    }
    // A request burst: allocate a handful, then free them in order.
    const std::uint32_t Burst =
        static_cast<std::uint32_t>(Rng.nextInRange(2, 12));
    std::uint32_t Slots[12];
    for (std::uint32_t B = 0; B < Burst && I < NumOps; ++B, ++I) {
      Slots[B] = Sessions + static_cast<std::uint32_t>(Rng.nextBounded(
                                T.SlotCount - Sessions));
      T.Ops.push_back(
          {Slots[B],
           static_cast<std::uint32_t>(Rng.nextInRange(16, 512))});
    }
    for (std::uint32_t B = 0; B < Burst && I < NumOps; ++B, ++I)
      T.Ops.push_back({Slots[B], 0});
  }
}

void generateScientific(XorShift128 &Rng, Trace &T, std::uint32_t NumOps) {
  // Phases: ramp up a working set of medium/large blocks, hold, release
  // nearly everything, repeat.
  std::uint32_t I = 0;
  while (I < NumOps) {
    const std::uint32_t Working =
        static_cast<std::uint32_t>(Rng.nextInRange(64, T.SlotCount));
    for (std::uint32_t S = 0; S < Working && I < NumOps; ++S, ++I)
      T.Ops.push_back(
          {S, static_cast<std::uint32_t>(Rng.nextInRange(1024, 12000))});
    for (std::uint32_t S = 0; S < Working && I < NumOps; ++S, ++I)
      T.Ops.push_back({S, Rng.nextBounded(16) == 0
                              ? static_cast<std::uint32_t>(
                                    Rng.nextInRange(1024, 12000))
                              : 0});
  }
}

void generateDataMining(XorShift128 &Rng, Trace &T, std::uint32_t NumOps) {
  for (std::uint32_t I = 0; I < NumOps; ++I) {
    const auto Slot =
        static_cast<std::uint32_t>(Rng.nextBounded(T.SlotCount));
    T.Ops.push_back(
        {Slot, Rng.nextBounded(3) == 0 ? 0 : heavyTailSize(Rng)});
  }
}

} // namespace

Trace lfm::generateTrace(TraceProfile Profile, std::uint64_t Seed,
                         std::uint32_t NumOps) {
  Trace T;
  T.Profile = Profile;
  T.SlotCount = 256;
  T.Ops.reserve(NumOps + 16);
  XorShift128 Rng(Seed ^ (static_cast<std::uint64_t>(Profile) << 56));
  switch (Profile) {
  case TraceProfile::WebServer:
    generateWebServer(Rng, T, NumOps);
    break;
  case TraceProfile::Scientific:
    generateScientific(Rng, T, NumOps);
    break;
  case TraceProfile::DataMining:
    generateDataMining(Rng, T, NumOps);
    break;
  }
  return T;
}

TraceResult lfm::replayTrace(MallocInterface &Alloc, unsigned Threads,
                             const Trace &T) {
  struct Rec {
    unsigned char *Ptr = nullptr;
    std::uint32_t Bytes = 0;
    unsigned char Fill = 0;
  };

  SpinBarrier Start(Threads + 1);
  std::vector<std::uint64_t> Begin(Threads), End(Threads);
  std::vector<TraceResult> Partial(Threads);
  std::vector<std::thread> Workers;
  Workers.reserve(Threads);

  for (unsigned W = 0; W < Threads; ++W)
    Workers.emplace_back([&, W] {
      std::vector<Rec> Live(T.SlotCount);
      TraceResult &R = Partial[W];
      Start.arriveAndWait();
      Begin[W] = monotonicNanos();
      for (const TraceOp &Op : T.Ops) {
        Rec &Slot = Live[Op.Slot];
        if (Slot.Ptr) {
          // Verify a sample of the old contents before releasing.
          const std::uint32_t Step = Slot.Bytes > 64 ? 31 : 7;
          for (std::uint32_t B = 0; B < Slot.Bytes; B += Step)
            if (Slot.Ptr[B] != Slot.Fill)
              ++R.Corruptions;
          Alloc.free(Slot.Ptr);
          Slot.Ptr = nullptr;
          ++R.Frees;
        }
        if (Op.Bytes) {
          // Offset sizes per worker so threads span size classes.
          const std::uint32_t Bytes = Op.Bytes + W * 8;
          auto *P = static_cast<unsigned char *>(Alloc.malloc(Bytes));
          if (!P) {
            ++R.Corruptions; // OOM counts as a failure in replay.
            continue;
          }
          const auto Fill =
              static_cast<unsigned char>((Op.Slot * 37 + W) | 1);
          std::memset(P, Fill, Bytes);
          Live[Op.Slot] = Rec{P, Bytes, Fill};
          ++R.Allocs;
        }
      }
      for (Rec &Slot : Live)
        if (Slot.Ptr) {
          Alloc.free(Slot.Ptr);
          ++R.Frees;
        }
      End[W] = monotonicNanos();
    });

  Start.arriveAndWait();
  for (auto &W : Workers)
    W.join();

  TraceResult Total;
  std::uint64_t First = Begin[0], Last = End[0];
  for (unsigned W = 0; W < Threads; ++W) {
    First = std::min(First, Begin[W]);
    Last = std::max(Last, End[W]);
    Total.Allocs += Partial[W].Allocs;
    Total.Frees += Partial[W].Frees;
    Total.Corruptions += Partial[W].Corruptions;
  }
  Total.Seconds = static_cast<double>(Last - First) * 1e-9;
  return Total;
}
