//===- harness/Workloads.cpp - The paper's six benchmarks -----------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "harness/Workloads.h"

#include "harness/ExtNodeQueue.h"
#include "support/Barrier.h"
#include "support/Platform.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

/// Runs \p Body(tid) on \p Threads threads, releasing them simultaneously
/// through a barrier. \returns the span from the first worker's start to
/// the last worker's finish — the paper times only the parallel phase.
/// Timestamps are taken by the workers themselves: on an oversubscribed
/// machine the coordinating thread can be descheduled across the whole
/// run, so its own clock reads would be meaningless.
template <typename BodyFn>
double timeParallel(unsigned Threads, BodyFn Body) {
  assert(Threads > 0 && "need at least one worker");
  SpinBarrier Start(Threads);
  std::vector<std::uint64_t> Begin(Threads), End(Threads);
  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Start.arriveAndWait();
      Begin[T] = monotonicNanos();
      Body(T);
      End[T] = monotonicNanos();
    });
  for (auto &W : Workers)
    W.join();
  std::uint64_t First = Begin[0], Last = End[0];
  for (unsigned T = 1; T < Threads; ++T) {
    First = std::min(First, Begin[T]);
    Last = std::max(Last, End[T]);
  }
  return static_cast<double>(Last - First) * 1e-9;
}

/// Duration-driven variant: releases the workers, sleeps \p Seconds, sets
/// \p Stop, then joins. \returns the actual timed-window length (again
/// from worker-side timestamps).
template <typename BodyFn>
double timeParallelFor(unsigned Threads, double Seconds,
                       std::atomic<bool> &Stop, BodyFn Body) {
  SpinBarrier Start(Threads + 1);
  std::vector<std::uint64_t> Begin(Threads), End(Threads);
  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      Start.arriveAndWait();
      Begin[T] = monotonicNanos();
      Body(T);
      End[T] = monotonicNanos();
    });
  Start.arriveAndWait();
  std::this_thread::sleep_for(std::chrono::duration<double>(Seconds));
  Stop.store(true, std::memory_order_release);
  for (auto &W : Workers)
    W.join();
  std::uint64_t First = Begin[0], Last = End[0];
  for (unsigned T = 1; T < Threads; ++T) {
    First = std::min(First, Begin[T]);
    Last = std::max(Last, End[T]);
  }
  return static_cast<double>(Last - First) * 1e-9;
}

/// Touch an allocated block the way a real program would (defeats any
/// hypothetical allocator that never produces usable memory).
void touch(void *Ptr) { *static_cast<volatile char *>(Ptr) = 1; }

} // namespace

WorkloadResult lfm::runLinuxScalability(MallocInterface &Alloc,
                                        unsigned Threads,
                                        std::uint64_t PairsPerThread) {
  const double Seconds = timeParallel(Threads, [&](unsigned) {
    for (std::uint64_t I = 0; I < PairsPerThread; ++I) {
      void *P = Alloc.malloc(8);
      touch(P);
      Alloc.free(P);
    }
  });
  return WorkloadResult{Seconds, PairsPerThread * Threads};
}

WorkloadResult lfm::runThreadtest(MallocInterface &Alloc, unsigned Threads,
                                  unsigned Iterations,
                                  unsigned BlocksPerIter) {
  // Pointer slots are pre-created outside the timed region so the harness
  // itself allocates nothing while the clock runs.
  std::vector<std::vector<void *>> Slots(Threads);
  for (auto &S : Slots)
    S.resize(BlocksPerIter);

  const double Seconds = timeParallel(Threads, [&](unsigned T) {
    std::vector<void *> &Mine = Slots[T];
    for (unsigned I = 0; I < Iterations; ++I) {
      for (unsigned B = 0; B < BlocksPerIter; ++B) {
        Mine[B] = Alloc.malloc(8);
        touch(Mine[B]);
      }
      for (unsigned B = 0; B < BlocksPerIter; ++B) // "freeing them in order"
        Alloc.free(Mine[B]);
    }
  });
  return WorkloadResult{Seconds, static_cast<std::uint64_t>(Threads) *
                                     Iterations * BlocksPerIter};
}

WorkloadResult lfm::runFalseSharing(MallocInterface &Alloc, unsigned Threads,
                                    unsigned PairsPerThread,
                                    unsigned WritesPerByte, bool Passive) {
  constexpr unsigned BlockBytes = 8;

  // Passive variant: one thread allocates a block per worker up front; the
  // workers free them immediately, priming cross-thread block reuse so a
  // placement policy that packs different threads' blocks into one cache
  // line gets caught (Torrellas et al. [22]).
  std::vector<void *> HandOff(Threads, nullptr);
  if (Passive)
    for (unsigned T = 0; T < Threads; ++T) {
      HandOff[T] = Alloc.malloc(BlockBytes);
      touch(HandOff[T]);
    }

  const double Seconds = timeParallel(Threads, [&](unsigned T) {
    if (Passive)
      Alloc.free(HandOff[T]);
    for (unsigned I = 0; I < PairsPerThread; ++I) {
      auto *Block = static_cast<volatile char *>(Alloc.malloc(BlockBytes));
      for (unsigned W = 0; W < WritesPerByte; ++W)
        for (unsigned B = 0; B < BlockBytes; ++B)
          Block[B] = static_cast<char>(B + W);
      Alloc.free(const_cast<char *>(Block));
    }
  });
  return WorkloadResult{Seconds,
                        static_cast<std::uint64_t>(Threads) * PairsPerThread};
}

WorkloadResult lfm::runLarson(MallocInterface &Alloc, unsigned Threads,
                              unsigned SlotsPerThread, unsigned MinSize,
                              unsigned MaxSize, double Seconds) {
  XorShift128 SetupRng(0x1a450);

  // Warm-up churn (untimed, per the paper): one thread allocates and frees
  // random-sized blocks in random order, fragmenting the heap the way a
  // long-lived server would before the measurement starts.
  {
    const std::size_t ChurnCount =
        static_cast<std::size_t>(Threads) * SlotsPerThread;
    std::vector<void *> Churn(ChurnCount);
    for (auto &P : Churn) {
      P = Alloc.malloc(SetupRng.nextInRange(MinSize, MaxSize));
      touch(P);
    }
    for (std::size_t I = ChurnCount; I > 1; --I)
      std::swap(Churn[I - 1], Churn[SetupRng.nextBounded(I)]);
    for (void *P : Churn)
      Alloc.free(P);
  }

  // "an equal number of blocks (1024) is handed over to each of the
  // remaining threads": seed every worker's slots from the setup thread.
  std::vector<std::vector<void *>> Slots(Threads);
  for (auto &S : Slots) {
    S.resize(SlotsPerThread);
    for (auto &P : S) {
      P = Alloc.malloc(SetupRng.nextInRange(MinSize, MaxSize));
      touch(P);
    }
  }

  std::atomic<bool> Stop{false};
  std::vector<std::uint64_t> Pairs(Threads, 0);
  const double Elapsed =
      timeParallelFor(Threads, Seconds, Stop, [&](unsigned T) {
        XorShift128 Rng(0xbeef + T);
        std::vector<void *> &Mine = Slots[T];
        std::uint64_t Count = 0;
        while (!Stop.load(std::memory_order_acquire)) {
          const std::size_t Victim = Rng.nextBounded(Mine.size());
          Alloc.free(Mine[Victim]);
          Mine[Victim] = Alloc.malloc(Rng.nextInRange(MinSize, MaxSize));
          touch(Mine[Victim]);
          ++Count;
        }
        Pairs[T] = Count;
      });

  std::uint64_t Total = 0;
  for (unsigned T = 0; T < Threads; ++T) {
    Total += Pairs[T];
    for (void *P : Slots[T])
      Alloc.free(P);
  }
  return WorkloadResult{Elapsed, Total};
}

namespace {

/// The paper's task: a 32-byte struct carrying a 40-80 byte block of
/// database indexes.
struct PcTask {
  std::uint32_t *Indexes;
  std::uint32_t Count;
  std::uint32_t Pad[5]; // Pad the task struct to the paper's 32 bytes.
};
static_assert(sizeof(PcTask) == 32, "task struct must be 32 bytes");

/// Consumer work: histogram the database values named by the task (one
/// malloc), then spend `Work` units of local compute, then release
/// everything (index block, task, histogram; the queue frees the node) —
/// "one malloc and 4 free operations on the part of the consumer".
void consumeTask(MallocInterface &Alloc, PcTask *Task,
                 const std::uint64_t *Db, unsigned Work) {
  auto *Hist = static_cast<std::uint32_t *>(Alloc.malloc(64));
  for (unsigned I = 0; I < 16; ++I)
    Hist[I] = 0;
  for (std::uint32_t I = 0; I < Task->Count; ++I)
    ++Hist[Db[Task->Indexes[I]] & 15];
  // Local work proportional to the `work` parameter (the knee-position
  // knob of Fig. 8f-h).
  volatile std::uint64_t Acc = 0;
  for (unsigned I = 0; I < Work; ++I)
    Acc = Acc + Hist[I & 15] + I;
  Alloc.free(Hist);
  Alloc.free(Task->Indexes);
  Alloc.free(Task);
}

/// Producer work: "selects a random-sized (10 to 20) random set of array
/// indexes, allocates a block of matching size (40 to 80 bytes) to record
/// the array indexes, then allocates a fixed size task structure (32
/// bytes) and a fixed size queue node" — 3 mallocs (the node inside
/// enqueue).
PcTask *produceTask(MallocInterface &Alloc, XorShift128 &Rng,
                    std::uint32_t DbSize) {
  const std::uint32_t Count =
      static_cast<std::uint32_t>(Rng.nextInRange(10, 20));
  auto *Indexes = static_cast<std::uint32_t *>(
      Alloc.malloc(Count * sizeof(std::uint32_t)));
  for (std::uint32_t I = 0; I < Count; ++I)
    Indexes[I] = static_cast<std::uint32_t>(Rng.nextBounded(DbSize));
  auto *Task = static_cast<PcTask *>(Alloc.malloc(sizeof(PcTask)));
  Task->Indexes = Indexes;
  Task->Count = Count;
  return Task;
}

} // namespace

WorkloadResult lfm::runProducerConsumer(MallocInterface &Alloc,
                                        unsigned Threads, unsigned Work,
                                        double Seconds,
                                        std::uint32_t DatabaseSize) {
  assert(Threads >= 1 && "producer-consumer needs at least the producer");

  // "a database of 1 million items is initialized randomly" — application
  // data, not allocator traffic.
  std::vector<std::uint64_t> Db(DatabaseSize);
  XorShift128 DbRng(0xdb);
  for (auto &V : Db)
    V = DbRng.next();

  ExtNodeQueue Queue(Alloc);
  std::atomic<bool> Stop{false};
  std::vector<std::uint64_t> Done(Threads, 0);
  constexpr std::int64_t HelpThreshold = 1000;

  const double Elapsed =
      timeParallelFor(Threads, Seconds, Stop, [&](unsigned T) {
        std::uint64_t Count = 0;
        if (T == 0) {
          // Producer. "When the number of tasks in the queue exceeds 1000,
          // the producer helps the consumers by dequeuing a task ... and
          // processing it."
          XorShift128 Rng(0x9d0d);
          while (!Stop.load(std::memory_order_acquire)) {
            if (Queue.approxSize() > HelpThreshold ||
                (Threads == 1 && Queue.approxSize() > 0)) {
              void *Payload = nullptr;
              if (Queue.dequeue(Payload)) {
                consumeTask(Alloc, static_cast<PcTask *>(Payload), Db.data(),
                            Work);
                ++Count;
              }
              continue;
            }
            Queue.enqueue(produceTask(Alloc, Rng, DatabaseSize));
          }
        } else {
          // Consumer.
          while (!Stop.load(std::memory_order_acquire)) {
            void *Payload = nullptr;
            if (!Queue.dequeue(Payload)) {
              cpuRelax();
              continue;
            }
            consumeTask(Alloc, static_cast<PcTask *>(Payload), Db.data(),
                        Work);
            ++Count;
          }
        }
        Done[T] = Count;
      });

  // Drain leftovers outside the window (uncounted).
  void *Payload = nullptr;
  while (Queue.dequeue(Payload)) {
    auto *Task = static_cast<PcTask *>(Payload);
    Alloc.free(Task->Indexes);
    Alloc.free(Task);
  }

  std::uint64_t Total = 0;
  for (std::uint64_t C : Done)
    Total += C;
  return WorkloadResult{Elapsed, Total};
}
