//===- harness/Driver.cpp - Benchmark driver utilities --------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace lfm;

std::uint64_t BenchScale::scaled(std::uint64_t PaperValue) const {
  const double V = static_cast<double>(PaperValue) * Scale;
  return V < 1.0 ? 1 : static_cast<std::uint64_t>(V);
}

const BenchScale &lfm::benchScale() {
  static const BenchScale Parsed = [] {
    BenchScale S;
    if (const char *E = std::getenv("LFM_BENCH_SCALE"))
      S.Scale = std::atof(E) > 0 ? std::atof(E) : S.Scale;
    if (const char *E = std::getenv("LFM_BENCH_SECONDS"))
      S.Seconds = std::atof(E) > 0 ? std::atof(E) : S.Seconds;
    if (const char *E = std::getenv("LFM_BENCH_MAXTHREADS"))
      S.MaxThreads = std::atoi(E) > 0 ? static_cast<unsigned>(std::atoi(E))
                                      : S.MaxThreads;
    return S;
  }();
  return Parsed;
}

void lfm::spawnDeadThread() {
  std::thread([] {}).join();
}

std::vector<unsigned> lfm::figureThreadCounts() {
  const unsigned Max = benchScale().MaxThreads;
  std::vector<unsigned> Counts;
  for (unsigned N : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u})
    if (N <= Max)
      Counts.push_back(N);
  if (Counts.empty() || Counts.back() != Max)
    Counts.push_back(Max);
  return Counts;
}

double lfm::contentionFreeLibcBaseline(const WorkloadFn &Fn) {
  spawnDeadThread(); // Footnote 4: force the multithreaded path.
  auto Libc = makeAllocator(AllocatorKind::SerialLock, 1);
  const WorkloadResult R = Fn(*Libc, 1);
  return R.throughput();
}

void lfm::runFigure(const char *Title,
                    const std::vector<AllocatorKind> &Kinds,
                    const std::vector<unsigned> &ThreadCounts,
                    const WorkloadFn &Fn, double Baseline) {
  std::printf("\n%s\n", Title);
  std::printf("(speedup over contention-free libc; libc baseline = %.3g "
              "ops/s)\n",
              Baseline);
  std::printf("%8s", "threads");
  for (AllocatorKind K : Kinds)
    std::printf(" %10s", allocatorKindName(K));
  std::printf("\n");

  for (unsigned Threads : ThreadCounts) {
    std::printf("%8u", Threads);
    for (AllocatorKind K : Kinds) {
      auto Alloc = makeAllocator(K, benchScale().MaxThreads);
      const WorkloadResult R = Fn(*Alloc, Threads);
      const double Speedup =
          Baseline > 0 ? R.throughput() / Baseline : 0.0;
      std::printf(" %10.2f", Speedup);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

void lfm::runStandardFigure(const char *Title, const WorkloadFn &Fn) {
  const double Baseline = contentionFreeLibcBaseline(Fn);
  runFigure(Title,
            {AllocatorKind::LockFree, AllocatorKind::Hoard,
             AllocatorKind::Ptmalloc, AllocatorKind::SerialLock},
            figureThreadCounts(), Fn, Baseline);
}
