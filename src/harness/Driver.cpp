//===- harness/Driver.cpp - Benchmark driver utilities --------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"

#include "lfmalloc/Config.h"
#include "support/RuntimeConfig.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

/// Where --metrics-json / --trace-json output goes; empty = capture off.
std::string MetricsPath;
std::string TracePath;

/// One measured benchmark cell, kept until the file is (re)written.
struct CellRecord {
  std::string Figure;
  std::string Allocator;
  unsigned Threads;
  std::uint64_t Ops;
  double Seconds;
  double Throughput;
  std::string Metrics; ///< Raw JSON object from writeMetricsJson().
};

std::vector<CellRecord> &cellRecords() {
  static std::vector<CellRecord> Records;
  return Records;
}

/// JSON string escaping for figure titles (they carry UTF-8 punctuation,
/// which passes through untouched; only quotes, backslashes, and control
/// characters need care).
void appendEscaped(std::string &Out, const char *S) {
  for (; *S; ++S) {
    const unsigned char C = static_cast<unsigned char>(*S);
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += static_cast<char>(C);
    } else if (C < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += static_cast<char>(C);
    }
  }
}

/// Captures one allocator's writeMetricsJson() output as a string,
/// trimming trailing whitespace so it embeds cleanly inside a record.
std::string captureMetrics(const MallocInterface &Alloc) {
  char *Buf = nullptr;
  std::size_t Len = 0;
  std::FILE *Mem = open_memstream(&Buf, &Len);
  if (!Mem)
    return "{}";
  Alloc.writeMetricsJson(Mem);
  std::fclose(Mem);
  std::string S(Buf, Len);
  std::free(Buf);
  while (!S.empty() && (S.back() == '\n' || S.back() == ' '))
    S.pop_back();
  return S.empty() ? std::string("{}") : S;
}

/// Rewrites the metrics file with every record so far (rewriting after
/// each figure keeps the file valid JSON even if the run is cut short).
void writeMetricsFile() {
  std::FILE *Out = std::fopen(MetricsPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "warning: cannot write --metrics-json file %s\n",
                 MetricsPath.c_str());
    return;
  }
  std::fprintf(Out, "{\"schema\": \"lfm-bench-metrics-v1\", \"records\": [");
  bool First = true;
  for (const CellRecord &R : cellRecords()) {
    std::string Fig, Name;
    appendEscaped(Fig, R.Figure.c_str());
    appendEscaped(Name, R.Allocator.c_str());
    std::fprintf(Out,
                 "%s\n  {\"figure\": \"%s\", \"allocator\": \"%s\", "
                 "\"threads\": %u, \"ops\": %llu, \"seconds\": %.6f, "
                 "\"throughput\": %.1f, \"metrics\": %s}",
                 First ? "" : ",", Fig.c_str(), Name.c_str(), R.Threads,
                 static_cast<unsigned long long>(R.Ops), R.Seconds,
                 R.Throughput, R.Metrics.c_str());
    First = false;
  }
  std::fprintf(Out, "\n]}\n");
  std::fclose(Out);
}

/// Constructs the allocator for one benchmark cell. When metrics or trace
/// capture is on, the lock-free kinds are built with the corresponding
/// telemetry enabled so each record carries the full snapshot; otherwise
/// the seed behaviour (telemetry off) is kept — the counters are cheap
/// but not free.
std::unique_ptr<MallocInterface> makeCellAllocator(AllocatorKind K) {
  const unsigned MaxThreads = benchScale().MaxThreads;
  const bool Capture = !MetricsPath.empty() || !TracePath.empty();
  if (Capture &&
      (K == AllocatorKind::LockFree || K == AllocatorKind::LockFreeUni)) {
    AllocatorOptions Opts;
    Opts.NumHeaps = K == AllocatorKind::LockFreeUni ? 1 : MaxThreads;
    Opts.EnableStats = true;
    Opts.EnableTrace = !TracePath.empty();
    return makeLockFreeAllocator(Opts, allocatorKindName(K));
  }
  return makeAllocator(K, MaxThreads);
}

/// Ordinal of the figure currently being swept. Bench binaries with
/// several panels (Fig. 8f-h, the ablations) call runFigure repeatedly;
/// the ordinal keeps their trace files from colliding.
unsigned FigureOrdinal = 0;

/// Builds the per-cell trace filename: the --trace-json path with a
/// distinguishing suffix inserted before its ".json" extension (appended,
/// with ".json" added, when the path has some other shape). The suffix is
/// "-<threads>", prefixed by "-fig<N>" for panels after the first and by
/// "-uni" for the uniprocessor variant, so a full sweep leaves one trace
/// per lock-free cell instead of the last cell overwriting all others.
std::string traceCellPath(AllocatorKind K, unsigned Threads) {
  std::string Suffix;
  if (FigureOrdinal > 1) {
    Suffix += "-fig";
    Suffix += std::to_string(FigureOrdinal);
  }
  if (K == AllocatorKind::LockFreeUni)
    Suffix += "-uni";
  Suffix += '-';
  Suffix += std::to_string(Threads);

  std::string Path = TracePath;
  if (Path.size() > 5 && Path.compare(Path.size() - 5, 5, ".json") == 0) {
    Path.insert(Path.size() - 5, Suffix);
  } else {
    Path += Suffix;
    Path += ".json";
  }
  return Path;
}

/// Writes one cell's Chrome trace to its traceCellPath() file.
void writeTraceFile(const MallocInterface &Alloc, const std::string &Path) {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "warning: cannot write --trace-json file %s\n",
                 Path.c_str());
    return;
  }
  Alloc.writeTraceJson(Out);
  std::fclose(Out);
}

} // namespace

std::uint64_t BenchScale::scaled(std::uint64_t PaperValue) const {
  const double V = static_cast<double>(PaperValue) * Scale;
  return V < 1.0 ? 1 : static_cast<std::uint64_t>(V);
}

const BenchScale &lfm::benchScale() {
  static const BenchScale Parsed = [] {
    using config::Var;
    BenchScale S;
    double F = 0;
    if (config::varF64(Var::BenchScale, F) && F > 0)
      S.Scale = F;
    if (config::varF64(Var::BenchSeconds, F) && F > 0)
      S.Seconds = F;
    std::uint64_t U = 0;
    if (config::varU64(Var::BenchMaxThreads, U) && U > 0)
      S.MaxThreads = static_cast<unsigned>(U);
    return S;
  }();
  return Parsed;
}

void lfm::benchInit(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--metrics-json=", 15) == 0)
      MetricsPath = Arg + 15;
    else if (std::strncmp(Arg, "--trace-json=", 13) == 0)
      TracePath = Arg + 13;
  }
  if (MetricsPath.empty())
    if (const char *E = config::varRaw(config::Var::MetricsJson))
      MetricsPath = E;
  if (TracePath.empty())
    if (const char *E = config::varRaw(config::Var::TraceJson))
      TracePath = E;
}

const char *lfm::metricsJsonPath() {
  return MetricsPath.empty() ? nullptr : MetricsPath.c_str();
}

const char *lfm::traceJsonPath() {
  return TracePath.empty() ? nullptr : TracePath.c_str();
}

void lfm::spawnDeadThread() {
  std::thread([] {}).join();
}

std::vector<unsigned> lfm::figureThreadCounts() {
  const unsigned Max = benchScale().MaxThreads;
  std::vector<unsigned> Counts;
  for (unsigned N : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u})
    if (N <= Max)
      Counts.push_back(N);
  if (Counts.empty() || Counts.back() != Max)
    Counts.push_back(Max);
  return Counts;
}

double lfm::contentionFreeLibcBaseline(const WorkloadFn &Fn) {
  spawnDeadThread(); // Footnote 4: force the multithreaded path.
  auto Libc = makeAllocator(AllocatorKind::SerialLock, 1);
  const WorkloadResult R = Fn(*Libc, 1);
  return R.throughput();
}

void lfm::runFigure(const char *Title,
                    const std::vector<AllocatorKind> &Kinds,
                    const std::vector<unsigned> &ThreadCounts,
                    const WorkloadFn &Fn, double Baseline) {
  ++FigureOrdinal;
  std::printf("\n%s\n", Title);
  std::printf("(speedup over contention-free libc; libc baseline = %.3g "
              "ops/s)\n",
              Baseline);
  std::printf("%8s", "threads");
  for (AllocatorKind K : Kinds)
    std::printf(" %10s", allocatorKindName(K));
  std::printf("\n");

  for (unsigned Threads : ThreadCounts) {
    std::printf("%8u", Threads);
    for (AllocatorKind K : Kinds) {
      auto Alloc = makeCellAllocator(K);
      const WorkloadResult R = Fn(*Alloc, Threads);
      const double Speedup =
          Baseline > 0 ? R.throughput() / Baseline : 0.0;
      std::printf(" %10.2f", Speedup);
      std::fflush(stdout);
      if (!MetricsPath.empty())
        cellRecords().push_back({Title, allocatorKindName(K), Threads, R.Ops,
                                 R.Seconds, R.throughput(),
                                 captureMetrics(*Alloc)});
      if (!TracePath.empty() && (K == AllocatorKind::LockFree ||
                                 K == AllocatorKind::LockFreeUni))
        writeTraceFile(*Alloc, traceCellPath(K, Threads));
    }
    std::printf("\n");
  }
  if (!MetricsPath.empty())
    writeMetricsFile();
}

void lfm::runStandardFigure(const char *Title, const WorkloadFn &Fn) {
  const double Baseline = contentionFreeLibcBaseline(Fn);
  runFigure(Title,
            {AllocatorKind::LockFree, AllocatorKind::Hoard,
             AllocatorKind::Ptmalloc, AllocatorKind::SerialLock},
            figureThreadCounts(), Fn, Baseline);
}
