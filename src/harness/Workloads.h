//===- harness/Workloads.h - The paper's six benchmarks ----------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reusable implementations of the benchmarks in the paper's §4.1:
/// Linux scalability [15], Threadtest [3], Active-false / Passive-false
/// [3], Larson [13], and the paper's own lock-free Producer-consumer.
/// Every workload drives an arbitrary allocator through MallocInterface;
/// the bench binaries sweep thread counts and allocators to regenerate
/// Table 1 and Fig. 8, and the test suite runs them small as integration
/// tests.
///
/// Parameters carry the paper's published values as documented defaults,
/// scaled down by the callers for wall-clock budget; the *shape* of the
/// results, not their absolute magnitude, is the reproduction target.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_HARNESS_WORKLOADS_H
#define LFMALLOC_HARNESS_WORKLOADS_H

#include "baselines/AllocatorInterface.h"

#include <cstdint>

namespace lfm {

/// Outcome of one workload run.
struct WorkloadResult {
  double Seconds = 0;      ///< Wall time of the timed region.
  std::uint64_t Ops = 0;   ///< Completed units (workload-defined).

  /// Units per second; the basis of every speedup figure.
  double throughput() const { return Seconds > 0 ? Ops / Seconds : 0; }
};

/// Linux scalability (Lever & Boreham): "each thread performs 10 million
/// malloc/free pairs of 8 byte blocks in a tight loop". Ops = pairs.
WorkloadResult runLinuxScalability(MallocInterface &Alloc, unsigned Threads,
                                   std::uint64_t PairsPerThread);

/// Threadtest (Hoard suite): "each thread performs 100 iterations of
/// allocating 100,000 8-byte blocks and then freeing them in order".
/// Ops = blocks allocated+freed (pairs).
WorkloadResult runThreadtest(MallocInterface &Alloc, unsigned Threads,
                             unsigned Iterations, unsigned BlocksPerIter);

/// Active-false / Passive-false (Hoard suite): "each thread performs
/// 10,000 malloc/free pairs (of 8 byte blocks) and each time it writes
/// 1,000 times to each byte of the allocated block". In the passive
/// variant "initially one thread allocates blocks and hands them to the
/// other threads, which free them immediately" before proceeding.
/// Ops = pairs. A slow result here means induced false sharing.
WorkloadResult runFalseSharing(MallocInterface &Alloc, unsigned Threads,
                               unsigned PairsPerThread,
                               unsigned WritesPerByte, bool Passive);

/// Larson (server simulation): random-sized blocks in [MinSize, MaxSize],
/// SlotsPerThread live blocks per thread seeded by one thread and handed
/// over; during the timed phase each thread repeatedly frees a random
/// victim and allocates a replacement. Ops = free/malloc pairs completed
/// in \p Seconds (the paper runs 30 s).
WorkloadResult runLarson(MallocInterface &Alloc, unsigned Threads,
                         unsigned SlotsPerThread, unsigned MinSize,
                         unsigned MaxSize, double Seconds);

/// The paper's Producer-consumer: one producer, Threads-1 consumers, a
/// lock-free FIFO of tasks over a 1M-entry database. Producer: 3 mallocs
/// per task (index block 40-80 B, task struct 32 B, queue node); helps
/// consume when the queue exceeds 1000 tasks. Consumer: builds a
/// histogram (1 malloc), does \p Work units of local work, 4 frees.
/// Ops = tasks fully processed in \p Seconds.
WorkloadResult runProducerConsumer(MallocInterface &Alloc, unsigned Threads,
                                   unsigned Work, double Seconds,
                                   std::uint32_t DatabaseSize = 1u << 20);

} // namespace lfm

#endif // LFMALLOC_HARNESS_WORKLOADS_H
