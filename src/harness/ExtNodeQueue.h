//===- harness/ExtNodeQueue.h - MS queue over malloc'd nodes -----*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lock-free FIFO queue of the paper's Producer-consumer benchmark
/// (§4.1, citing [19, 20]): a Michael–Scott queue whose nodes are
/// *allocated and freed through the allocator under test* — the producer
/// mallocs each queue node (one of its "3 malloc operations") and the
/// consumer frees it (one of its "4 free operations"). Dequeued nodes pass
/// through hazard-pointer retirement before the allocator's free() is
/// invoked, which is precisely the composition of lock-free allocation and
/// safe memory reclamation the paper's Section 5 advertises.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_HARNESS_EXTNODEQUEUE_H
#define LFMALLOC_HARNESS_EXTNODEQUEUE_H

#include "baselines/AllocatorInterface.h"
#include "lockfree/HazardPointers.h"

#include <atomic>
#include <cstdint>
#include <new>

namespace lfm {

/// Lock-free MPMC FIFO whose node storage comes from a MallocInterface.
class ExtNodeQueue {
public:
  /// Queue node; sized by what the allocator under test must serve (the
  /// paper's node is 16 bytes; the hazard header makes ours larger, the
  /// allocation pattern is identical).
  struct Node : HazardErasable {
    std::atomic<Node *> Next;
    void *Payload;
  };

  /// \param Alloc allocator under test; provides and reclaims node memory.
  /// \param Domain hazard domain for dequeue protection.
  explicit ExtNodeQueue(MallocInterface &Alloc,
                        HazardDomain &Domain = HazardDomain::global())
      : Alloc(Alloc), Domain(Domain) {
    Node *Dummy = makeNode(nullptr);
    Head.store(Dummy, std::memory_order_relaxed);
    Tail.store(Dummy, std::memory_order_relaxed);
  }
  ExtNodeQueue(const ExtNodeQueue &) = delete;
  ExtNodeQueue &operator=(const ExtNodeQueue &) = delete;

  /// Quiescent teardown: drains remaining entries (freeing payload-less
  /// nodes only; payloads are the caller's) and the dummy.
  ~ExtNodeQueue() {
    Domain.drainAll();
    Node *N = Head.load(std::memory_order_relaxed);
    while (N) {
      Node *Next = N->Next.load(std::memory_order_relaxed);
      Alloc.free(N);
      N = Next;
    }
  }

  /// Allocates a node for \p Payload via the allocator under test (counts
  /// as one of the producer's mallocs) and enqueues it. Lock-free.
  /// \returns false if the allocator is out of memory.
  bool enqueue(void *Payload) {
    void *Raw = Alloc.malloc(sizeof(Node));
    if (!Raw)
      return false;
    Node *N = makeNodeAt(Raw, Payload);
    for (;;) {
      Node *T = Domain.protect(HpSlotTail, Tail);
      Node *Next = T->Next.load(std::memory_order_acquire);
      if (T != Tail.load(std::memory_order_acquire))
        continue;
      if (Next) {
        Tail.compare_exchange_weak(T, Next, std::memory_order_release,
                                   std::memory_order_relaxed);
        continue;
      }
      Node *Expected = nullptr;
      if (T->Next.compare_exchange_weak(Expected, N,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
        Tail.compare_exchange_strong(T, N, std::memory_order_release,
                                     std::memory_order_relaxed);
        break;
      }
    }
    Domain.clear(HpSlotTail);
    ApproxCount.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Dequeues the oldest payload. The spent node is retired and then freed
  /// through the allocator under test (the consumer's node free).
  /// \returns false when empty.
  bool dequeue(void *&Payload) {
    for (;;) {
      Node *H = Domain.protect(HpSlotHead, Head);
      Node *T = Tail.load(std::memory_order_acquire);
      Node *Next = Domain.protectWith<Node>(HpSlotNext, [&] {
        return H->Next.load(std::memory_order_acquire);
      });
      if (H != Head.load(std::memory_order_acquire))
        continue;
      if (!Next) {
        Domain.clear(HpSlotHead);
        Domain.clear(HpSlotNext);
        return false;
      }
      if (H == T) {
        Tail.compare_exchange_weak(T, Next, std::memory_order_release,
                                   std::memory_order_relaxed);
        continue;
      }
      void *Value = Next->Payload;
      if (Head.compare_exchange_weak(H, Next, std::memory_order_release,
                                     std::memory_order_relaxed)) {
        Payload = Value;
        Domain.clear(HpSlotHead);
        Domain.clear(HpSlotNext);
        Domain.retire(H, reclaimNode, &Alloc);
        ApproxCount.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
  }

  /// Racy length estimate; the producer throttles on this, matching the
  /// paper's "when the number of tasks in the queue exceeds 1000".
  std::int64_t approxSize() const {
    const std::int64_t N = ApproxCount.load(std::memory_order_relaxed);
    return N < 0 ? 0 : N;
  }

private:
  static constexpr unsigned HpSlotHead = 0;
  static constexpr unsigned HpSlotTail = 1;
  static constexpr unsigned HpSlotNext = 2;

  Node *makeNode(void *Payload) {
    void *Raw = Alloc.malloc(sizeof(Node));
    assert(Raw && "allocator under test refused a queue node");
    return makeNodeAt(Raw, Payload);
  }

  static Node *makeNodeAt(void *Raw, void *Payload) {
    Node *N = new (Raw) Node();
    N->Next.store(nullptr, std::memory_order_relaxed);
    N->Payload = Payload;
    return N;
  }

  static void reclaimNode(HazardErasable *Obj, void *Ctx) {
    static_cast<MallocInterface *>(Ctx)->free(static_cast<Node *>(Obj));
  }

  MallocInterface &Alloc;
  HazardDomain &Domain;
  alignas(CacheLineSize) std::atomic<Node *> Head{nullptr};
  alignas(CacheLineSize) std::atomic<Node *> Tail{nullptr};
  alignas(CacheLineSize) std::atomic<std::int64_t> ApproxCount{0};
};

} // namespace lfm

#endif // LFMALLOC_HARNESS_EXTNODEQUEUE_H
