//===- harness/ReplayWorkload.cpp - Recorded-trace replay -----------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "harness/ReplayWorkload.h"

#include "support/Barrier.h"
#include "support/Timing.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

using namespace lfm;
using namespace lfm::trace;

namespace {

/// Slot value while the allocation either failed at replay time or was
/// suppressed; the freeing thread skips the free instead of spinning on a
/// pointer that will never arrive.
void *const FailedAlloc = reinterpret_cast<void *>(1);

void touchBlock(void *P, std::uint64_t Bytes) {
  auto *B = static_cast<unsigned char *>(P);
  for (std::uint64_t Off = 0; Off < Bytes; Off += 4096)
    B[Off] = static_cast<unsigned char>(Off | 1);
  if (Bytes != 0)
    B[Bytes - 1] = 0x5a;
}

} // namespace

RecordedReplayResult lfm::replayRecorded(MallocInterface &Alloc,
                                         const ReplayPlan &Plan,
                                         unsigned LatencySampleEvery) {
  const std::size_t NumThreads = Plan.PerThread.size();
  RecordedReplayResult Total;
  if (NumThreads == 0)
    return Total;

  // One handoff slot per token: the allocating thread publishes the
  // pointer, the freeing thread (possibly another) consumes it.
  const std::size_t NumSlots = static_cast<std::size_t>(Plan.MaxToken) + 1;
  std::unique_ptr<std::atomic<void *>[]> Slots(
      new std::atomic<void *>[NumSlots]);
  for (std::size_t I = 0; I < NumSlots; ++I)
    Slots[I].store(nullptr, std::memory_order_relaxed);

  Alloc.resetPeak();

  SpinBarrier Start(static_cast<unsigned>(NumThreads) + 1);
  std::vector<std::uint64_t> Begin(NumThreads), End(NumThreads);
  std::vector<RecordedReplayResult> Partial(NumThreads);
  std::vector<std::thread> Workers;
  Workers.reserve(NumThreads);

  for (std::size_t W = 0; W < NumThreads; ++W)
    Workers.emplace_back([&, W] {
      RecordedReplayResult &R = Partial[W];
      const std::vector<ReplayOp> &Ops = Plan.PerThread[W];
      std::uint64_t OpIdx = 0;
      Start.arriveAndWait();
      Begin[W] = monotonicNanos();
      for (const ReplayOp &Op : Ops) {
        const bool Sample =
            LatencySampleEvery != 0 && (OpIdx++ % LatencySampleEvery) == 0;
        const std::uint64_t T0 = Sample ? monotonicNanos() : 0;
        if (Op.IsAlloc) {
          void *P = Alloc.malloc(static_cast<std::size_t>(Op.Size));
          if (Sample)
            R.LatencyNs.add(monotonicNanos() - T0);
          if (P != nullptr) {
            touchBlock(P, Op.Size);
            ++R.Allocs;
          } else {
            ++R.FailedAllocs;
          }
          Slots[Op.Token].store(P != nullptr ? P : FailedAlloc,
                                std::memory_order_release);
        } else {
          // The plan guarantees some thread eventually publishes this
          // token, so a bounded-progress spin (not a lock) suffices —
          // this wait IS the recorded cross-thread-free dependency.
          void *P = Slots[Op.Token].load(std::memory_order_acquire);
          unsigned Spins = 0;
          while (P == nullptr) {
            if (++Spins >= 64) {
              std::this_thread::yield();
              Spins = 0;
            }
            P = Slots[Op.Token].load(std::memory_order_acquire);
          }
          if (P != FailedAlloc) {
            Alloc.free(P);
            if (Sample)
              R.LatencyNs.add(monotonicNanos() - T0);
            ++R.Frees;
          }
        }
      }
      End[W] = monotonicNanos();
      // Teardown (untimed): release blocks the trace never freed.
      for (const std::uint64_t Tok : Plan.Leftover[W]) {
        void *P = Slots[Tok].load(std::memory_order_acquire);
        if (P != nullptr && P != FailedAlloc)
          Alloc.free(P);
      }
    });

  Start.arriveAndWait();
  for (auto &T : Workers)
    T.join();

  std::uint64_t First = Begin[0], Last = End[0];
  for (std::size_t W = 0; W < NumThreads; ++W) {
    First = First < Begin[W] ? First : Begin[W];
    Last = Last > End[W] ? Last : End[W];
    Total.Allocs += Partial[W].Allocs;
    Total.Frees += Partial[W].Frees;
    Total.FailedAllocs += Partial[W].FailedAllocs;
    Total.LatencyNs.merge(Partial[W].LatencyNs);
  }
  Total.Seconds = static_cast<double>(Last - First) * 1e-9;
  Total.CrossThreadFrees = Plan.CrossThreadFrees;
  Total.PeakBytes = Alloc.pageStats().PeakBytes;
  return Total;
}
