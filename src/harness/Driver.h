//===- harness/Driver.h - Benchmark driver utilities -------------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the bench binaries: environment-driven scaling, the
/// paper's contention-free measurement protocol (footnote 4's dead spawn),
/// and a figure runner that sweeps allocators × thread counts and prints
/// speedup-over-contention-free-libc rows — the exact shape of the paper's
/// Table 1 and Fig. 8 series.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_HARNESS_DRIVER_H
#define LFMALLOC_HARNESS_DRIVER_H

#include "baselines/AllocatorInterface.h"
#include "harness/Workloads.h"

#include <functional>
#include <vector>

namespace lfm {

/// Wall-clock budget knobs, read from the environment once:
///  LFM_BENCH_SCALE      multiplies iteration counts   (default 1.0)
///  LFM_BENCH_SECONDS    timed-phase length in seconds (default 0.4;
///                       the paper runs 30 s phases)
///  LFM_BENCH_MAXTHREADS top of every thread sweep     (default 16,
///                       the paper's POWER3 processor count)
struct BenchScale {
  double Scale = 1.0;
  double Seconds = 0.4;
  unsigned MaxThreads = 16;

  /// Applies Scale to a paper-sized iteration count, keeping >= 1.
  std::uint64_t scaled(std::uint64_t PaperValue) const;
};

/// \returns the process-wide scale (parsed once).
const BenchScale &benchScale();

/// Parses the harness flags shared by every bench binary; call first in
/// main(). Flags:
///
///   --metrics-json=<path>  record every benchmark cell (figure, allocator,
///                          threads, ops, seconds, throughput) together
///                          with the allocator's own metrics JSON — the
///                          full telemetry counter set for the lock-free
///                          allocators — and write them all to <path> as
///                          {"schema": "lfm-bench-metrics-v1",
///                           "records": [...]}.
///   --trace-json=<path>    build the lock-free cells with event tracing
///                          and write each cell's Chrome trace JSON to its
///                          own file: <path> with "-<threads>" (plus
///                          "-fig<N>" for figures after a binary's first,
///                          and "-uni" for the uniprocessor variant)
///                          inserted before the ".json" extension —
///                          e.g. --trace-json=out.json at 8 threads
///                          writes out-8.json. No cell overwrites another.
///
/// The LFM_METRICS_JSON / LFM_TRACE_JSON environment variables are
/// equivalent fallbacks (flags win). Unknown arguments are ignored. The
/// metrics file is rewritten after every figure, so an interrupted run
/// still leaves valid JSON.
void benchInit(int Argc, char **Argv);

/// \returns the --metrics-json / LFM_METRICS_JSON path, or null when
/// metrics capture is off.
const char *metricsJsonPath();

/// \returns the --trace-json / LFM_TRACE_JSON path, or null when trace
/// capture is off.
const char *traceJsonPath();

/// The paper's footnote 4: spawn a thread that does nothing and exits, so
/// "contention-free" latency is measured on the true multithreaded path
/// even for allocators with single-thread bypass tricks.
void spawnDeadThread();

/// \returns thread counts 1..MaxThreads in the paper's Fig. 8 style
/// (every processor count on the 16-way machine; we thin the tail to keep
/// wall clock bounded: 1,2,3,4,6,8,12,16).
std::vector<unsigned> figureThreadCounts();

/// One workload driven over an allocator at a given thread count.
using WorkloadFn =
    std::function<WorkloadResult(MallocInterface &Alloc, unsigned Threads)>;

/// Runs \p Fn single-threaded on a fresh serial-lock allocator — the
/// contention-free libc baseline every speedup in the paper is relative
/// to. \returns its throughput.
double contentionFreeLibcBaseline(const WorkloadFn &Fn);

/// Sweeps \p Kinds x \p ThreadCounts over \p Fn and prints one row per
/// thread count with speedup-over-\p Baseline per allocator — a Fig. 8
/// panel. Every cell uses a freshly constructed allocator.
void runFigure(const char *Title, const std::vector<AllocatorKind> &Kinds,
               const std::vector<unsigned> &ThreadCounts,
               const WorkloadFn &Fn, double Baseline);

/// Convenience: baseline + sweep with the standard contender set
/// (new, hoard, ptmalloc, libc).
void runStandardFigure(const char *Title, const WorkloadFn &Fn);

} // namespace lfm

#endif // LFMALLOC_HARNESS_DRIVER_H
