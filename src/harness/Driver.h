//===- harness/Driver.h - Benchmark driver utilities -------------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the bench binaries: environment-driven scaling, the
/// paper's contention-free measurement protocol (footnote 4's dead spawn),
/// and a figure runner that sweeps allocators × thread counts and prints
/// speedup-over-contention-free-libc rows — the exact shape of the paper's
/// Table 1 and Fig. 8 series.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_HARNESS_DRIVER_H
#define LFMALLOC_HARNESS_DRIVER_H

#include "baselines/AllocatorInterface.h"
#include "harness/Workloads.h"

#include <functional>
#include <vector>

namespace lfm {

/// Wall-clock budget knobs, read from the environment once:
///  LFM_BENCH_SCALE      multiplies iteration counts   (default 1.0)
///  LFM_BENCH_SECONDS    timed-phase length in seconds (default 0.4;
///                       the paper runs 30 s phases)
///  LFM_BENCH_MAXTHREADS top of every thread sweep     (default 16,
///                       the paper's POWER3 processor count)
struct BenchScale {
  double Scale = 1.0;
  double Seconds = 0.4;
  unsigned MaxThreads = 16;

  /// Applies Scale to a paper-sized iteration count, keeping >= 1.
  std::uint64_t scaled(std::uint64_t PaperValue) const;
};

/// \returns the process-wide scale (parsed once).
const BenchScale &benchScale();

/// The paper's footnote 4: spawn a thread that does nothing and exits, so
/// "contention-free" latency is measured on the true multithreaded path
/// even for allocators with single-thread bypass tricks.
void spawnDeadThread();

/// \returns thread counts 1..MaxThreads in the paper's Fig. 8 style
/// (every processor count on the 16-way machine; we thin the tail to keep
/// wall clock bounded: 1,2,3,4,6,8,12,16).
std::vector<unsigned> figureThreadCounts();

/// One workload driven over an allocator at a given thread count.
using WorkloadFn =
    std::function<WorkloadResult(MallocInterface &Alloc, unsigned Threads)>;

/// Runs \p Fn single-threaded on a fresh serial-lock allocator — the
/// contention-free libc baseline every speedup in the paper is relative
/// to. \returns its throughput.
double contentionFreeLibcBaseline(const WorkloadFn &Fn);

/// Sweeps \p Kinds x \p ThreadCounts over \p Fn and prints one row per
/// thread count with speedup-over-\p Baseline per allocator — a Fig. 8
/// panel. Every cell uses a freshly constructed allocator.
void runFigure(const char *Title, const std::vector<AllocatorKind> &Kinds,
               const std::vector<unsigned> &ThreadCounts,
               const WorkloadFn &Fn, double Baseline);

/// Convenience: baseline + sweep with the standard contender set
/// (new, hoard, ptmalloc, libc).
void runStandardFigure(const char *Title, const WorkloadFn &Fn);

} // namespace lfm

#endif // LFMALLOC_HARNESS_DRIVER_H
