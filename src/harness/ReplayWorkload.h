//===- harness/ReplayWorkload.h - Recorded-trace replay ----------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays an `lfm-alloctrace-v1` recording (trace/TraceReader.h) against
/// any MallocInterface contender, faithfully reproducing the recorded
/// thread structure: one replay thread per recorded thread, ops in
/// recorded per-thread order, and — the part synthetic workloads cannot
/// fake — the exact cross-thread-free topology. A block the application
/// allocated on thread A and freed on thread B is allocated by replay
/// thread A and freed by replay thread B, handed across through a
/// per-token pointer slot (the remote-free path is precisely what the
/// paper's §3 Anchor/partial-list machinery exists for, so preserving
/// these edges is what makes a replayed number trustworthy).
///
/// Fidelity limits (also in docs/OBSERVABILITY.md): calloc and aligned
/// allocations replay as plain allocations of the recorded size, realloc
/// as allocate-then-free, and recorded inter-op delays are not reenacted
/// (replay runs at full speed; DtNs is available to future pacing modes).
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_HARNESS_REPLAYWORKLOAD_H
#define LFMALLOC_HARNESS_REPLAYWORKLOAD_H

#include "baselines/AllocatorInterface.h"
#include "support/Histogram.h"
#include "trace/TraceReader.h"

#include <cstdint>

namespace lfm {

struct RecordedReplayResult {
  double Seconds = 0;
  std::uint64_t Allocs = 0; ///< Allocations performed (excl. teardown-frees).
  std::uint64_t Frees = 0;
  std::uint64_t CrossThreadFrees = 0; ///< Frees satisfied via token handoff.
  std::uint64_t FailedAllocs = 0;     ///< Replay-time OOMs (frees skipped).
  std::uint64_t PeakBytes = 0;        ///< Allocator page-level high water.
  LogHistogram LatencyNs;             ///< Sampled per-op latency.

  double throughput() const {
    return Seconds > 0 ? static_cast<double>(Allocs + Frees) / Seconds : 0;
  }
};

/// Replays \p Plan against \p Alloc. \p LatencySampleEvery samples one op
/// latency out of every N per thread (0 disables sampling entirely; 1
/// times every op). Blocks still live at end-of-plan are freed by their
/// allocating thread after the timed region.
RecordedReplayResult replayRecorded(MallocInterface &Alloc,
                                    const trace::ReplayPlan &Plan,
                                    unsigned LatencySampleEvery = 16);

} // namespace lfm

#endif // LFMALLOC_HARNESS_REPLAYWORKLOAD_H
