//===- harness/TraceWorkload.h - Synthetic application traces ----*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic allocation traces modeled on the application
/// classes the paper's introduction names ("commercial database and web
/// servers to data mining and scientific applications"). The paper's §4.1
/// microbenchmarks each isolate one behaviour; a trace replay exercises
/// their superposition: mixed size distributions, phase changes, and
/// skewed lifetimes, reproducibly from a seed.
///
/// Profiles:
///  - WebServer:  many small short-lived blocks (requests) over a slowly
///    churning set of medium long-lived blocks (sessions), bursty.
///  - Scientific: phase behaviour — allocate a large working set, compute
///    (touch), release almost everything, repeat.
///  - DataMining: log-normal-ish sizes with a heavy tail into the large-
///    block path, random lifetimes.
///
/// The same trace (seed + profile + length) drives tests (determinism,
/// conservation) and `bench_traces` (throughput per allocator).
///
/// Naming note: this is one of three unrelated "trace" mechanisms in the
/// tree. These workloads are *synthetic* op streams invented from a seed;
/// telemetry/TraceRing.h records *allocator-internal* events for
/// Chrome-trace export; and trace/AllocTrace.h is the allocation flight
/// recorder, which captures a *real program's* malloc/free stream for
/// replay (harness/ReplayWorkload.h runs those recordings through the
/// same allocator table). See the disambiguation in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_HARNESS_TRACEWORKLOAD_H
#define LFMALLOC_HARNESS_TRACEWORKLOAD_H

#include "baselines/AllocatorInterface.h"
#include "harness/Workloads.h"

#include <cstdint>
#include <vector>

namespace lfm {

/// Application classes a trace can imitate.
enum class TraceProfile : std::uint8_t {
  WebServer,
  Scientific,
  DataMining,
};

/// \returns the printable name of \p Profile.
const char *traceProfileName(TraceProfile Profile);

/// One step of a trace: operate on slot \p Slot of the replayer's live
/// table. Bytes == 0 frees the slot; otherwise (re)allocate Bytes there
/// (freeing any previous occupant first).
struct TraceOp {
  std::uint32_t Slot;
  std::uint32_t Bytes;
};

/// A reproducible allocation trace.
struct Trace {
  TraceProfile Profile;
  std::uint32_t SlotCount; ///< Size of the live table the ops index.
  std::vector<TraceOp> Ops;
};

/// Generates a deterministic trace: same (Profile, Seed, NumOps) always
/// yields the same operations.
Trace generateTrace(TraceProfile Profile, std::uint64_t Seed,
                    std::uint32_t NumOps);

/// Replays \p T on \p Threads threads (each thread replays the full op
/// sequence against its own slot table, offsetting sizes by its id so
/// threads hit different size classes too). Every block is filled and
/// verified; a corruption aborts via assert in debug builds and is
/// reported in the result otherwise.
struct TraceResult {
  double Seconds = 0;
  std::uint64_t Allocs = 0;
  std::uint64_t Frees = 0;
  std::uint64_t Corruptions = 0;

  double throughput() const {
    return Seconds > 0 ? (Allocs + Frees) / Seconds : 0;
  }
};

TraceResult replayTrace(MallocInterface &Alloc, unsigned Threads,
                        const Trace &T);

} // namespace lfm

#endif // LFMALLOC_HARNESS_TRACEWORKLOAD_H
