//===- lockfree/HazardPointers.h - Safe memory reclamation -------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Michael's hazard-pointer methodology (the paper's references [17,19]):
/// lock-free safe memory reclamation and ABA prevention using only
/// pointer-sized atomic operations. The allocator uses it where the paper
/// says "SafeCAS (i.e., ABA-safe) ... we use the hazard pointer methodology"
/// — the descriptor freelist (Fig. 7) — and the FIFO partial-superblock
/// lists use it to protect Michael–Scott queue nodes (§3.2.6).
///
/// How it defeats ABA on a freelist: a popped node cannot re-enter the list
/// until it passes through retire(), and retire() defers the node's reuse
/// while any thread holds a hazard on it. A thread that protected the head
/// therefore knows the head's Next field cannot have been recycled under it.
///
/// Allocation discipline: this facility performs NO dynamic allocation after
/// domain construction. Retired objects are chained intrusively through
/// their own HazardErasable header and the scan uses stack buffers, so the
/// allocator built on top remains self-contained and async-signal-safe.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LOCKFREE_HAZARDPOINTERS_H
#define LFMALLOC_LOCKFREE_HAZARDPOINTERS_H

#include "os/PageAllocator.h"
#include "schedtest/SchedPoint.h"
#include "support/Platform.h"

#include <atomic>
#include <cstdint>

namespace lfm {

/// Intrusive header for objects reclaimed through a HazardDomain. Embed (or
/// inherit) one per reclaimable object; its fields are owned by the domain
/// between retire() and reclamation.
struct HazardErasable {
  HazardErasable *RetiredNext = nullptr;
  void (*Reclaim)(HazardErasable *Obj, void *Ctx) = nullptr;
  void *ReclaimCtx = nullptr;
};

/// A hazard-pointer domain: a table of per-thread records, each holding a
/// small fixed number of hazard slots plus a private retired list.
///
/// Threads acquire a record lazily on first use and release it at thread
/// exit (retired leftovers are adopted by the next thread to claim the
/// record). Lifetime contract: every thread that used a domain must have
/// exited — or must never touch it again — before the domain is destroyed.
/// The process-wide global() domain is never destroyed and is therefore
/// exempt.
class HazardDomain {
public:
  /// Hazard slots per thread. Slot-use convention across the library (no
  /// call path nests two users of the same slot):
  ///   0,1,2 — Michael–Scott queue (head / tail / next)
  ///   3     — freelist pops (descriptor list, Fig. 7 SafeCAS)
  static constexpr unsigned SlotsPerThread = 4;

  /// Maximum simultaneously live threads per domain.
  static constexpr unsigned MaxRecords = 512;

  /// Retired-list length that triggers a scan. Must exceed the maximum
  /// number of simultaneously protected objects for scans to always make
  /// progress; MaxRecords * SlotsPerThread is the theoretical bound, but
  /// with R retired and H actually-held hazards a scan reclaims R - H, and
  /// in practice H is tiny. 128 keeps memory bounded and scans cheap.
  static constexpr unsigned ScanThreshold = 128;

  HazardDomain();
  ~HazardDomain();
  HazardDomain(const HazardDomain &) = delete;
  HazardDomain &operator=(const HazardDomain &) = delete;

  /// The process-lifetime domain shared by the allocator's internal
  /// structures. Never destroyed (constructed in immortal storage).
  static HazardDomain &global();

  /// Publishes a validated snapshot of \p Src in hazard slot \p Slot.
  /// Loops until the published value matches a re-read of \p Src, so on
  /// return the pointee cannot be reclaimed until the slot is cleared.
  /// \returns the protected pointer (may be null; null needs no protection).
  template <typename T> T *protect(unsigned Slot, const std::atomic<T *> &Src) {
    void *Ptr = Src.load(std::memory_order_acquire);
    for (;;) {
      if (!Ptr)
        return nullptr;
      publishHazard(Slot, Ptr);
      // The load-to-publish window: until the re-read below validates the
      // published hazard, the pointee may already have been retired.
      LFM_SCHED_POINT(HazardProtect);
      void *Again = Src.load(std::memory_order_acquire);
      if (Again == Ptr)
        return static_cast<T *>(Ptr);
      Ptr = Again;
    }
  }

  /// Variant of protect() for sources that are not plain std::atomic
  /// pointers (e.g. a tagged word). \p Reload must return the current
  /// pointer value of the source.
  template <typename T, typename ReloadFn>
  T *protectWith(unsigned Slot, ReloadFn Reload) {
    void *Ptr = Reload();
    for (;;) {
      if (!Ptr)
        return nullptr;
      publishHazard(Slot, Ptr);
      LFM_SCHED_POINT(HazardProtect);
      void *Again = Reload();
      if (Again == Ptr)
        return static_cast<T *>(Ptr);
      Ptr = Again;
    }
  }

  /// Publishes \p Ptr in slot \p Slot without source validation. Only
  /// correct when the caller already *owns* a guarantee that the pointee
  /// cannot be retired before this publish becomes visible (e.g. free()
  /// holds an unfreed block of the superblock, so its descriptor cannot
  /// reach the retire path yet). Includes the same ordering fence as
  /// protect().
  void publish(unsigned Slot, void *Ptr) { publishHazard(Slot, Ptr); }

  /// Clears hazard slot \p Slot for the calling thread.
  void clear(unsigned Slot);

  /// Clears all hazard slots for the calling thread.
  void clearAll();

  /// Hands \p Obj to the domain for deferred reclamation. \p Reclaim will
  /// be invoked with (\p Obj, \p Ctx) once no thread holds a hazard on it.
  /// Never calls \p Reclaim inline with a hazard outstanding on \p Obj.
  void retire(HazardErasable *Obj, void (*Reclaim)(HazardErasable *, void *),
              void *Ctx);

  /// Reclaims every retired object whose pointer is not currently
  /// protected, across all records. Intended for quiescent moments (tests,
  /// shutdown); safe but heavyweight to call concurrently.
  void drainAll();

  /// \returns the total number of objects currently awaiting reclamation
  /// (racy; for tests and stats).
  std::uint64_t retiredCount() const;

  /// \returns number of records ever activated (high-water; for tests).
  unsigned recordWatermark() const;

  /// \returns the number of scan passes this domain has run (monotonic;
  /// for the telemetry gauges — scans are rare, one shared counter is
  /// contention-free in practice).
  std::uint64_t scanCount() const {
    return Scans.load(std::memory_order_relaxed);
  }

  /// \returns the number of retired objects scans have reclaimed.
  std::uint64_t reclaimCount() const {
    return Reclaims.load(std::memory_order_relaxed);
  }

private:
  struct alignas(CacheLineSize) Record {
    std::atomic<void *> Slots[SlotsPerThread];
    std::atomic<bool> Active;
    // Owned by the record holder; adopted with the record itself. The
    // count is atomic only because retiredCount() sums it from other
    // threads (relaxed — a monitoring gauge); the holder is the sole
    // writer.
    HazardErasable *RetiredHead;
    std::atomic<std::uint32_t> RetiredCount;
  };
  static_assert(sizeof(void *) * SlotsPerThread + 16 <= CacheLineSize,
                "Record must fit one cache line");

  friend struct HazardThreadCache;

  Record *myRecord();
  void publishHazard(unsigned Slot, void *Ptr);
  void scan(Record *Rec);
  void releaseRecord(Record *Rec);

  Record *Records = nullptr;
  std::atomic<unsigned> RecordWatermarkCount{0};
  std::atomic<std::uint64_t> Scans{0};
  std::atomic<std::uint64_t> Reclaims{0};
  PageAllocator Pages;
  std::uint64_t DomainId;
};

} // namespace lfm

#endif // LFMALLOC_LOCKFREE_HAZARDPOINTERS_H
