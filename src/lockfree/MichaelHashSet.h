//===- lockfree/MichaelHashSet.h - Lock-free hash table ----------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Michael's lock-free hash table (the paper's reference [16]): a fixed
/// array of lock-free list-based sets. Per-bucket operations inherit
/// MichaelSet's lock-freedom and linearizability; expected O(1) with a
/// load factor kept reasonable by sizing NumBuckets for the workload.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LOCKFREE_MICHAELHASHSET_H
#define LFMALLOC_LOCKFREE_MICHAELHASHSET_H

#include "lockfree/MichaelSet.h"

#include <memory>

namespace lfm {

/// Lock-free hash set of trivially-copyable keys.
template <typename KeyT> class MichaelHashSet {
public:
  /// \param NumBuckets bucket count (rounded up to a power of two).
  /// \param Domain hazard domain shared by all buckets.
  /// \param Memory node storage plumbed through to every bucket.
  explicit MichaelHashSet(std::size_t NumBuckets,
                          HazardDomain &Domain = HazardDomain::global(),
                          NodeMemory Memory = NodeMemory{nullptr, nullptr,
                                                         nullptr}) {
    std::size_t Rounded = 1;
    while (Rounded < NumBuckets)
      Rounded <<= 1;
    Mask = Rounded - 1;
    Buckets = std::make_unique<BucketStorage[]>(Rounded);
    for (std::size_t I = 0; I < Rounded; ++I)
      new (&Buckets[I].Storage) MichaelSet<KeyT>(Domain, Memory);
    Count = Rounded;
  }

  MichaelHashSet(const MichaelHashSet &) = delete;
  MichaelHashSet &operator=(const MichaelHashSet &) = delete;

  ~MichaelHashSet() {
    for (std::size_t I = 0; I < Count; ++I)
      bucket(I).~MichaelSet<KeyT>();
  }

  /// \returns false if \p Key was already present.
  bool insert(KeyT Key) { return bucketFor(Key).insert(Key); }

  /// \returns false if \p Key was absent.
  bool remove(KeyT Key) { return bucketFor(Key).remove(Key); }

  bool contains(KeyT Key) { return bucketFor(Key).contains(Key); }

  /// Racy cardinality estimate (exact when quiescent).
  std::int64_t size() const {
    std::int64_t Total = 0;
    for (std::size_t I = 0; I < Count; ++I)
      Total += bucket(I).size();
    return Total;
  }

  std::size_t numBuckets() const { return Count; }

private:
  struct BucketStorage {
    alignas(MichaelSet<KeyT>) unsigned char Storage[sizeof(
        MichaelSet<KeyT>)];
  };

  MichaelSet<KeyT> &bucket(std::size_t I) const {
    return *std::launder(
        reinterpret_cast<MichaelSet<KeyT> *>(&Buckets[I].Storage));
  }

  MichaelSet<KeyT> &bucketFor(KeyT Key) {
    // Fibonacci hashing on the key's bytes-as-integer.
    std::uint64_t H = 0;
    if constexpr (sizeof(KeyT) <= sizeof(std::uint64_t)) {
      __builtin_memcpy(&H, &Key, sizeof(KeyT));
    } else {
      const auto *Bytes = reinterpret_cast<const unsigned char *>(&Key);
      for (std::size_t I = 0; I < sizeof(KeyT); ++I)
        H = H * 131 + Bytes[I];
    }
    H *= 0x9e3779b97f4a7c15ULL;
    return bucket((H >> 32) & Mask);
  }

  std::unique_ptr<BucketStorage[]> Buckets;
  std::size_t Mask = 0;
  std::size_t Count = 0;
};

} // namespace lfm

#endif // LFMALLOC_LOCKFREE_MICHAELHASHSET_H
