//===- lockfree/Tagged.h - Tagged pointer-sized CAS --------------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "classic IBM tag mechanism" (paper §3.2.3, citing the System/370
/// principles of operation): pack a version counter next to a pointer inside
/// a single CAS-able word so that a pop that raced with pop+push of the same
/// node (the ABA pattern) fails instead of corrupting the list.
///
/// On 64-bit Linux/x86-64 user addresses occupy the low 47 bits, so a 64-bit
/// word holds a 48-bit pointer plus a 16-bit tag. A 16-bit tag wraps after
/// 65536 pops of the *same head value interleaved against one stalled
/// thread*, which the paper's "full wraparound practically impossible in a
/// short time" argument covers for freelist-style structures; structures
/// needing absolute safety use hazard pointers (HazardPointers.h) instead,
/// exactly as the paper prescribes for the descriptor list.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LOCKFREE_TAGGED_H
#define LFMALLOC_LOCKFREE_TAGGED_H

#include "support/Platform.h"

#include <atomic>
#include <cstdint>

namespace lfm {

/// A (pointer, tag) pair packed into one 64-bit word with atomic CAS.
///
/// \tparam T pointee type. Pointers must be canonical user-space addresses
/// (fit in 48 bits); asserted on every pack.
template <typename T> class TaggedAtomic {
public:
  /// Unpacked view of the word.
  struct Snapshot {
    T *Ptr;
    std::uint16_t Tag;
  };

  TaggedAtomic() : Word(0) {}
  explicit TaggedAtomic(T *Initial) : Word(pack(Initial, 0)) {}
  TaggedAtomic(const TaggedAtomic &) = delete;
  TaggedAtomic &operator=(const TaggedAtomic &) = delete;

  /// \returns the current (pointer, tag) pair.
  Snapshot load(std::memory_order Order = std::memory_order_acquire) const {
    return unpack(Word.load(Order));
  }

  /// Unconditionally stores \p Ptr with tag zero. Only safe before the
  /// structure is shared (initialization / tests).
  void storeRelaxed(T *Ptr) { Word.store(pack(Ptr, 0), std::memory_order_relaxed); }

  /// Single CAS replacing \p Expected with (\p Desired, Expected.Tag + 1).
  /// The tag increment is what defeats ABA. \returns true on success; on
  /// failure \p Expected is refreshed with the current value.
  bool compareExchange(Snapshot &Expected, T *Desired,
                       std::memory_order Success = std::memory_order_acq_rel,
                       std::memory_order Failure =
                           std::memory_order_acquire) {
    std::uint64_t Want = pack(Expected.Ptr, Expected.Tag);
    const std::uint64_t Next =
        pack(Desired, static_cast<std::uint16_t>(Expected.Tag + 1));
    if (Word.compare_exchange_weak(Want, Next, Success, Failure))
      return true;
    Expected = unpack(Want);
    return false;
  }

private:
  static std::uint64_t pack(T *Ptr, std::uint16_t Tag) {
    const std::uint64_t Bits = reinterpret_cast<std::uint64_t>(Ptr);
    assert((Bits >> PtrBits) == 0 && "pointer does not fit in 48 bits");
    return (static_cast<std::uint64_t>(Tag) << PtrBits) | Bits;
  }

  static Snapshot unpack(std::uint64_t Packed) {
    return Snapshot{reinterpret_cast<T *>(Packed & PtrMask),
                    static_cast<std::uint16_t>(Packed >> PtrBits)};
  }

  static constexpr unsigned PtrBits = 48;
  static constexpr std::uint64_t PtrMask = (1ULL << PtrBits) - 1;

  std::atomic<std::uint64_t> Word;
};

} // namespace lfm

#endif // LFMALLOC_LOCKFREE_TAGGED_H
