//===- lockfree/SplitOrderedHashSet.h - Resizable lock-free hash -*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shalev & Shavit's split-ordered lists (the allocator paper's reference
/// [21], "Split-Ordered Lists: Lock-Free Extensible Hash Tables", PODC
/// 2003): a lock-free hash table that RESIZES without ever moving a key.
///
/// The trick: all keys live in ONE lock-free ordered list, sorted by the
/// bit-REVERSAL of their hash ("split order"). Doubling the table then
/// never reorders anything — bucket b's items are already contiguous, and
/// the new bucket b + 2^i simply needs a shortcut ("dummy") node spliced
/// into the middle of the list, which is a plain lock-free insert. Dummy
/// nodes carry the bucket's reversed index with the LSB clear; regular
/// keys set the LSB, so dummies sort immediately before their bucket's
/// keys and no regular key ever collides with a dummy.
///
/// Together with MichaelSet/MichaelHashSet this completes the paper's §5
/// list: "linked lists and hash tables [16, 21] ... completely dynamic
/// and completely lock-free", here on top of hazard pointers and (via
/// NodeMemory) the lock-free allocator itself.
///
/// Keys are 63-bit unsigned values (one bit funds the dummy/regular tag).
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LOCKFREE_SPLITORDEREDHASHSET_H
#define LFMALLOC_LOCKFREE_SPLITORDEREDHASHSET_H

#include "lockfree/MichaelSet.h" // NodeMemory.
#include "lockfree/TreiberStack.h"
#include "os/PageAllocator.h"
#include "support/Platform.h"

#include <atomic>
#include <cstdint>
#include <new>

namespace lfm {

/// Lock-free extensible hash set of keys in [0, 2^63).
class SplitOrderedHashSet {
public:
  /// \param Domain hazard domain for traversal and reclamation.
  /// \param Memory pluggable node storage (default: internal pool).
  /// \param LoadFactor average keys per bucket before doubling.
  explicit SplitOrderedHashSet(HazardDomain &Domain = HazardDomain::global(),
                               NodeMemory Memory = NodeMemory{nullptr,
                                                              nullptr,
                                                              nullptr},
                               unsigned LoadFactor = 4)
      : Domain(Domain), Memory(Memory), LoadFactor(LoadFactor) {
    // Segment 0, bucket 0: the list head dummy.
    SegmentPtrs[0].store(mapSegment(SegmentSize),
                         std::memory_order_relaxed);
    Node *Head = acquireNode();
    Head->SoKey = 0; // Dummy for bucket 0 (reverse(0) == 0).
    Head->NextMark.store(0, std::memory_order_relaxed);
    bucketSlot(0).store(Head, std::memory_order_release);
    BucketCount.store(2, std::memory_order_relaxed);
  }

  SplitOrderedHashSet(const SplitOrderedHashSet &) = delete;
  SplitOrderedHashSet &operator=(const SplitOrderedHashSet &) = delete;

  /// Quiescent teardown (hazard-domain contract as MSQueue).
  ~SplitOrderedHashSet() {
    Domain.drainAll();
    Node *N =
        SegmentPtrs[0].load(std::memory_order_relaxed)[0].load(
            std::memory_order_relaxed);
    while (N) {
      Node *Next = ptrOf(N->NextMark.load(std::memory_order_relaxed));
      releaseNode(N);
      N = Next;
    }
    for (unsigned S = 0; S < MaxSegments; ++S)
      if (std::atomic<Node *> *Seg =
              SegmentPtrs[S].load(std::memory_order_relaxed))
        Pages.unmap(Seg, segmentBytes(S));
    void *C = Chunks.load(std::memory_order_relaxed);
    while (C) {
      void *Next = *static_cast<void **>(C);
      Pages.unmap(C, ChunkBytes);
      C = Next;
    }
  }

  /// Inserts \p Key. \returns false if present (or on OOM).
  bool insert(std::uint64_t Key) {
    assert(Key < (1ULL << 63) && "keys are 63-bit");
    Node *N = acquireNode();
    if (!N)
      return false;
    N->SoKey = regularSoKey(Key);
    const std::uint64_t B =
        Key % BucketCount.load(std::memory_order_acquire);
    Node *BucketHead = bucketOrInit(B);
    if (!listInsert(BucketHead, N)) {
      Domain.clearAll();
      releaseNode(N);
      return false;
    }
    Domain.clearAll();
    const std::int64_t Size =
        Count.fetch_add(1, std::memory_order_relaxed) + 1;
    // Extend the table when the load factor is exceeded (CAS so only one
    // doubling wins per threshold crossing).
    std::uint64_t Buckets = BucketCount.load(std::memory_order_relaxed);
    if (static_cast<std::uint64_t>(Size) > LoadFactor * Buckets &&
        Buckets < MaxBuckets)
      BucketCount.compare_exchange_strong(Buckets, Buckets * 2,
                                          std::memory_order_acq_rel);
    return true;
  }

  /// Removes \p Key. \returns false if absent.
  bool remove(std::uint64_t Key) {
    const std::uint64_t B =
        Key % BucketCount.load(std::memory_order_acquire);
    Node *BucketHead = bucketOrInit(B);
    const bool Ok = listRemove(BucketHead, regularSoKey(Key));
    Domain.clearAll();
    if (Ok)
      Count.fetch_sub(1, std::memory_order_relaxed);
    return Ok;
  }

  /// \returns true if \p Key is present.
  bool contains(std::uint64_t Key) {
    const std::uint64_t B =
        Key % BucketCount.load(std::memory_order_acquire);
    Node *BucketHead = bucketOrInit(B);
    FindResult R = listFind(BucketHead, regularSoKey(Key));
    Domain.clearAll();
    return R.Found;
  }

  /// Racy cardinality (exact when quiescent).
  std::int64_t size() const {
    const std::int64_t N = Count.load(std::memory_order_relaxed);
    return N < 0 ? 0 : N;
  }

  /// Current bucket-table width (grows by doubling; for tests).
  std::uint64_t bucketCount() const {
    return BucketCount.load(std::memory_order_relaxed);
  }

private:
  struct Node : HazardErasable {
    std::atomic<std::uintptr_t> NextMark{0};
    Node *FreeNext = nullptr;
    std::uint64_t SoKey = 0; ///< Split-order key; LSB set => regular.
  };

  struct FindResult {
    std::atomic<std::uintptr_t> *Prev;
    Node *Cur;
    bool Found;
  };

  static constexpr std::uintptr_t MarkBit = 1;
  static constexpr unsigned HpCur = 0;
  static constexpr unsigned HpNext = 1;
  static constexpr unsigned HpPrevNode = 2;
  static constexpr unsigned MaxSegments = 20;
  static constexpr std::uint64_t SegmentSize = 512; // Buckets in seg 0/1.
  static constexpr std::uint64_t MaxBuckets =
      SegmentSize << (MaxSegments - 1);
  static constexpr std::size_t ChunkBytes = OsPageSize;
  static constexpr std::size_t NodesPerChunk =
      (ChunkBytes - sizeof(void *)) / sizeof(Node);

  //===--------------------------------------------------------------===//
  // Split-order keys
  //===--------------------------------------------------------------===//

  static std::uint64_t reverseBits(std::uint64_t V) {
    V = ((V >> 1) & 0x5555555555555555ULL) | ((V & 0x5555555555555555ULL) << 1);
    V = ((V >> 2) & 0x3333333333333333ULL) | ((V & 0x3333333333333333ULL) << 2);
    V = ((V >> 4) & 0x0f0f0f0f0f0f0f0fULL) | ((V & 0x0f0f0f0f0f0f0f0fULL) << 4);
    V = ((V >> 8) & 0x00ff00ff00ff00ffULL) | ((V & 0x00ff00ff00ff00ffULL) << 8);
    V = ((V >> 16) & 0x0000ffff0000ffffULL) |
        ((V & 0x0000ffff0000ffffULL) << 16);
    return (V >> 32) | (V << 32);
  }

  /// Regular (key-carrying) nodes: reversed key with the LSB set.
  static std::uint64_t regularSoKey(std::uint64_t Key) {
    return reverseBits(Key) | 1;
  }

  /// Dummy (bucket) nodes: reversed bucket index, LSB clear.
  static std::uint64_t dummySoKey(std::uint64_t Bucket) {
    return reverseBits(Bucket);
  }

  /// Parent bucket: clear the most significant set bit of the index
  /// (the bucket this one split off from when the table doubled).
  static std::uint64_t parentBucket(std::uint64_t Bucket) {
    assert(Bucket != 0 && "bucket 0 has no parent");
    return Bucket & ~(1ULL << log2Floor(Bucket));
  }

  //===--------------------------------------------------------------===//
  // Bucket table (segmented, grows without moving existing segments)
  //===--------------------------------------------------------------===//

  static std::uint64_t segmentCapacity(unsigned S) {
    return S == 0 ? SegmentSize : SegmentSize << (S - 1);
  }

  static std::size_t segmentBytes(unsigned S) {
    return sizeof(std::atomic<Node *>) * segmentCapacity(S);
  }

  std::atomic<Node *> *mapSegment(std::uint64_t Buckets) {
    auto *Seg = static_cast<std::atomic<Node *> *>(
        Pages.map(sizeof(std::atomic<Node *>) * Buckets));
    return Seg; // mmap memory is zeroed: all slots null.
  }

  std::atomic<Node *> &bucketSlot(std::uint64_t Bucket) {
    const unsigned S =
        Bucket < SegmentSize
            ? 0
            : log2Floor(Bucket / SegmentSize) + 1;
    const std::uint64_t Base = S == 0 ? 0 : segmentCapacity(S);
    std::atomic<Node *> *Seg =
        SegmentPtrs[S].load(std::memory_order_acquire);
    if (!Seg) {
      std::atomic<Node *> *Fresh = mapSegment(segmentCapacity(S));
      std::atomic<Node *> *Expected = nullptr;
      if (SegmentPtrs[S].compare_exchange_strong(
              Expected, Fresh, std::memory_order_acq_rel))
        Seg = Fresh;
      else {
        Pages.unmap(Fresh, segmentBytes(S));
        Seg = Expected;
      }
    }
    return Seg[Bucket - Base];
  }

  /// \returns the bucket's dummy node, lazily splicing it (and its
  /// ancestors) into the list on first touch — the split-ordered
  /// "recursive initialization".
  Node *bucketOrInit(std::uint64_t Bucket) {
    std::atomic<Node *> &Slot = bucketSlot(Bucket);
    if (Node *Dummy = Slot.load(std::memory_order_acquire))
      return Dummy;

    Node *Parent = bucketOrInit(parentBucket(Bucket));
    Node *Dummy = acquireNode();
    if (!Dummy)
      return Parent; // OOM: degrade to scanning from the parent.
    Dummy->SoKey = dummySoKey(Bucket);
    if (!listInsert(Parent, Dummy)) {
      // Someone else's dummy for this bucket won the splice; find it.
      Domain.clearAll();
      releaseNode(Dummy);
      FindResult R = listFind(Parent, dummySoKey(Bucket));
      Node *Existing = R.Found ? R.Cur : Parent;
      Domain.clearAll();
      Node *Expected = nullptr;
      Slot.compare_exchange_strong(Expected, Existing,
                                   std::memory_order_acq_rel);
      return Slot.load(std::memory_order_acquire);
    }
    Domain.clearAll();
    Node *Expected = nullptr;
    if (!Slot.compare_exchange_strong(Expected, Dummy,
                                      std::memory_order_acq_rel))
      return Expected; // Lost the publish; ours stays as a spare dummy.
    return Dummy;
  }

  //===--------------------------------------------------------------===//
  // The underlying Michael list over split-order keys
  //===--------------------------------------------------------------===//

  static Node *ptrOf(std::uintptr_t W) {
    return reinterpret_cast<Node *>(W & ~MarkBit);
  }
  static std::uintptr_t packPtr(Node *N) {
    return reinterpret_cast<std::uintptr_t>(N);
  }

  bool casLink(std::atomic<std::uintptr_t> *Link, Node *Expected,
               Node *Desired) {
    std::uintptr_t Want = packPtr(Expected);
    return Link->compare_exchange_strong(Want, packPtr(Desired),
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }

  /// Michael find over NextMark links starting at \p Start (a dummy that
  /// is never removed), with rotating hazards; see MichaelSet.h for the
  /// annotated version of this loop.
  FindResult listFind(Node *Start, std::uint64_t SoKey) {
    unsigned SlotPrev = HpPrevNode, SlotCur = HpCur, SlotNext = HpNext;
  TryAgain:
    std::atomic<std::uintptr_t> *Prev = &Start->NextMark;
    Node *Cur;
    for (std::uintptr_t W = Prev->load(std::memory_order_acquire);;) {
      Cur = ptrOf(W);
      if (!Cur)
        break;
      Domain.publish(SlotCur, Cur);
      const std::uintptr_t Again = Prev->load(std::memory_order_acquire);
      if ((Again & ~MarkBit) == (W & ~MarkBit))
        break;
      W = Again;
    }
    for (;;) {
      if (!Cur)
        return FindResult{Prev, nullptr, false};
      std::uintptr_t NextWord =
          Cur->NextMark.load(std::memory_order_acquire);
      for (;;) {
        Domain.publish(SlotNext, ptrOf(NextWord));
        const std::uintptr_t Again =
            Cur->NextMark.load(std::memory_order_acquire);
        if (Again == NextWord)
          break;
        NextWord = Again;
      }
      if (Prev->load(std::memory_order_acquire) != packPtr(Cur))
        goto TryAgain;
      if (NextWord & MarkBit) {
        if (!casLink(Prev, Cur, ptrOf(NextWord)))
          goto TryAgain;
        Domain.retire(Cur, reclaimNode, this);
        Cur = ptrOf(NextWord);
        std::swap(SlotCur, SlotNext);
        continue;
      }
      if (Cur->SoKey >= SoKey)
        return FindResult{Prev, Cur, Cur->SoKey == SoKey};
      Prev = &Cur->NextMark;
      const unsigned Recycled = SlotPrev;
      SlotPrev = SlotCur;
      SlotCur = SlotNext;
      SlotNext = Recycled;
      Cur = ptrOf(NextWord);
    }
  }

  bool listInsert(Node *Start, Node *N) {
    for (;;) {
      FindResult R = listFind(Start, N->SoKey);
      if (R.Found)
        return false;
      N->NextMark.store(packPtr(R.Cur), std::memory_order_relaxed);
      if (casLink(R.Prev, R.Cur, N))
        return true;
    }
  }

  bool listRemove(Node *Start, std::uint64_t SoKey) {
    for (;;) {
      FindResult R = listFind(Start, SoKey);
      if (!R.Found)
        return false;
      const std::uintptr_t Next =
          R.Cur->NextMark.load(std::memory_order_acquire);
      if (Next & MarkBit)
        continue;
      std::uintptr_t Expected = Next;
      if (!R.Cur->NextMark.compare_exchange_strong(
              Expected, Next | MarkBit, std::memory_order_acq_rel,
              std::memory_order_relaxed))
        continue;
      if (casLink(R.Prev, R.Cur, ptrOf(Next)))
        Domain.retire(R.Cur, reclaimNode, this);
      else
        listFind(Start, SoKey); // Let the cleanup pass unlink it.
      return true;
    }
  }

  //===--------------------------------------------------------------===//
  // Node storage (pooled or external, as MichaelSet)
  //===--------------------------------------------------------------===//

  Node *acquireNode() {
    if (Memory.Alloc) {
      void *Raw = Memory.Alloc(Memory.Ctx, sizeof(Node));
      return Raw ? new (Raw) Node() : nullptr;
    }
    if (Node *N = FreeNodes.pop()) {
      N->NextMark.store(0, std::memory_order_relaxed);
      return N;
    }
    void *Raw = Pages.map(ChunkBytes);
    if (!Raw)
      return nullptr;
    *static_cast<void **>(Raw) = Chunks.load(std::memory_order_relaxed);
    while (!Chunks.compare_exchange_weak(
        *static_cast<void **>(Raw), Raw, std::memory_order_release,
        std::memory_order_relaxed)) {
    }
    auto *Nodes = reinterpret_cast<Node *>(static_cast<char *>(Raw) +
                                           sizeof(void *));
    for (std::size_t I = 1; I < NodesPerChunk; ++I)
      FreeNodes.push(new (&Nodes[I]) Node());
    return new (&Nodes[0]) Node();
  }

  void releaseNode(Node *N) {
    if (Memory.Free) {
      Memory.Free(Memory.Ctx, N);
      return;
    }
    FreeNodes.push(N);
  }

  static void reclaimNode(HazardErasable *Obj, void *Ctx) {
    static_cast<SplitOrderedHashSet *>(Ctx)->releaseNode(
        static_cast<Node *>(Obj));
  }

  HazardDomain &Domain;
  NodeMemory Memory;
  const unsigned LoadFactor;
  PageAllocator Pages;
  TreiberStack<Node, &Node::FreeNext> FreeNodes;
  std::atomic<void *> Chunks{nullptr};
  std::atomic<std::atomic<Node *> *> SegmentPtrs[MaxSegments] = {};
  alignas(CacheLineSize) std::atomic<std::uint64_t> BucketCount{2};
  alignas(CacheLineSize) std::atomic<std::int64_t> Count{0};
};

} // namespace lfm

#endif // LFMALLOC_LOCKFREE_SPLITORDEREDHASHSET_H
