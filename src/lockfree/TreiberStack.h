//===- lockfree/TreiberStack.h - Classic lock-free LIFO ----------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "classic freelist push/pop algorithm [8]" the paper builds on: an
/// intrusive Treiber LIFO stack whose head is a tagged word (Tagged.h), so
/// pop is ABA-resistant via the IBM tag mechanism.
///
/// SAFETY CONTRACT: nodes must be *type-stable* — once a node has ever been
/// pushed, its memory may be recycled through this stack forever but must
/// never be returned to the OS or repurposed as a different type, because a
/// popping thread may dereference Node::Next on a node that was concurrently
/// popped by someone else. This is exactly the regime the paper runs its
/// descriptor and node freelists in ("superblock descriptors are not reused
/// as regular blocks and cannot be returned to the OS", §3.2.5).
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LOCKFREE_TREIBERSTACK_H
#define LFMALLOC_LOCKFREE_TREIBERSTACK_H

#include "lockfree/Tagged.h"
#include "schedtest/SchedPoint.h"
#include "telemetry/ContentionHook.h"

#include <atomic>
#include <cstdint>

namespace lfm {

/// Intrusive lock-free LIFO stack.
///
/// \tparam NodeT node type.
/// \tparam NextField pointer-to-member naming the link field the stack may
/// overwrite while the node is inside (defaults to `&NodeT::Next`; nodes
/// that also live in other structures can dedicate a separate field).
template <typename NodeT, NodeT *NodeT::*NextField = &NodeT::Next>
class TreiberStack {
public:
  TreiberStack() = default;
  TreiberStack(const TreiberStack &) = delete;
  TreiberStack &operator=(const TreiberStack &) = delete;

  /// Pushes \p Node. Lock-free; loops only while other pushes/pops succeed.
  void push(NodeT *Node) {
    LFM_CONT_LOOP(TreiberPush);
    typename TaggedAtomic<NodeT>::Snapshot Head =
        this->Head.load(std::memory_order_relaxed);
    for (;;) {
      LFM_CONT_ATTEMPT(TreiberPush);
      LFM_SCHED_POINT(TreiberPush);
      // Relaxed atomic store: a concurrent pop may read this link through
      // a stale head (benign — its CAS then fails on the tag), and the
      // release CAS below is what publishes the value to the pop that
      // wins. atomic_ref keeps the node type a plain struct.
      std::atomic_ref<NodeT *>(Node->*NextField)
          .store(Head.Ptr, std::memory_order_relaxed);
      // Release so the Next write above is visible to the popper that
      // acquires the new head (paper Fig. 7, DescRetire memory fence).
      if (!LFM_SCHED_CAS_FAIL(TreiberPush) &&
          this->Head.compareExchange(Head, Node, std::memory_order_release,
                                     std::memory_order_relaxed))
        return;
    }
  }

  /// Pops the most recently pushed node. \returns nullptr when empty.
  NodeT *pop() {
    LFM_CONT_LOOP(TreiberPop);
    typename TaggedAtomic<NodeT>::Snapshot Head = this->Head.load();
    for (;;) {
      LFM_CONT_ATTEMPT(TreiberPop);
      if (!Head.Ptr)
        return nullptr; // Scope dtor closes out the contention sample.
      // Reading the link is safe only under the type-stability contract;
      // relaxed is enough because the tagged CAS below validates that the
      // head (and with it this link) did not change under us.
      NodeT *Next = std::atomic_ref<NodeT *>(Head.Ptr->*NextField)
                        .load(std::memory_order_relaxed);
      // The window between the link read above and the CAS below is THE
      // tagged-ABA window (§3.2.5); the schedule tests preempt here.
      LFM_SCHED_POINT(TreiberPop);
      if (!LFM_SCHED_CAS_FAIL(TreiberPop) &&
          this->Head.compareExchange(Head, Next))
        return Head.Ptr;
    }
  }

  /// Racy emptiness check for stats and tests.
  bool empty() const { return Head.load(std::memory_order_relaxed).Ptr == nullptr; }

  /// Current head tag, for tests pinning the 16-bit tag-wraparound window
  /// (each successful head CAS increments it mod 2^16).
  std::uint16_t headTag() const {
    return Head.load(std::memory_order_relaxed).Tag;
  }

private:
  TaggedAtomic<NodeT> Head;
};

} // namespace lfm

#endif // LFMALLOC_LOCKFREE_TREIBERSTACK_H
