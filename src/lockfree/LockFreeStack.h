//===- lockfree/LockFreeStack.h - Dynamic lock-free LIFO ---------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IBM/Treiber LIFO stack (paper reference [8]) in its *fully dynamic*
/// form — the paper's §5: nodes are allocated from pluggable memory (by
/// default an internal pool; the composition example uses lfmalloc) and
/// reclaimed with hazard pointers, so unlike TreiberStack.h there is no
/// type-stability requirement and node memory genuinely comes and goes.
///
/// ABA note: TreiberStack.h uses the tag trick and type-stable nodes; here
/// hazard pointers both prevent ABA (a popped node cannot be pushed back
/// while protected) and make it safe to read Next on a node that loses a
/// race, even though its memory may later return to the allocator.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LOCKFREE_LOCKFREESTACK_H
#define LFMALLOC_LOCKFREE_LOCKFREESTACK_H

#include "lockfree/MichaelSet.h" // For NodeMemory.
#include "lockfree/TreiberStack.h"
#include "os/PageAllocator.h"

#include <atomic>
#include <new>
#include <type_traits>

namespace lfm {

/// Lock-free MPMC LIFO of trivially-copyable values with dynamic nodes.
template <typename T> class LockFreeStack {
  static_assert(std::is_trivially_copyable_v<T>,
                "LockFreeStack stores values by bitwise copy");

public:
  explicit LockFreeStack(HazardDomain &Domain = HazardDomain::global(),
                         NodeMemory Memory = NodeMemory{nullptr, nullptr,
                                                        nullptr})
      : Domain(Domain), Memory(Memory) {}

  LockFreeStack(const LockFreeStack &) = delete;
  LockFreeStack &operator=(const LockFreeStack &) = delete;

  /// Quiescent teardown (same contract as MSQueue).
  ~LockFreeStack() {
    Domain.drainAll();
    Node *N = Head.load(std::memory_order_relaxed);
    while (N) {
      Node *Next = N->Next.load(std::memory_order_relaxed);
      releaseNode(N);
      N = Next;
    }
    Chunk *C = Chunks.load(std::memory_order_relaxed);
    while (C) {
      Chunk *Next = C->Next;
      Pages.unmap(C, ChunkBytes);
      C = Next;
    }
  }

  /// Pushes \p Value. Lock-free. \returns false on out-of-memory.
  bool push(T Value) {
    Node *N = acquireNode();
    if (!N)
      return false;
    N->Value = Value;
    Node *Head0 = Head.load(std::memory_order_relaxed);
    do {
      N->Next.store(Head0, std::memory_order_relaxed);
    } while (!Head.compare_exchange_weak(Head0, N,
                                         std::memory_order_release,
                                         std::memory_order_relaxed));
    ApproxCount.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Pops the most recent value into \p Out. \returns false when empty.
  bool pop(T &Out) {
    for (;;) {
      Node *N = Domain.protect(HpSlotTop, Head);
      if (!N) {
        Domain.clear(HpSlotTop);
        return false;
      }
      // Safe even if N was popped concurrently: the hazard keeps its
      // memory alive until we stop referencing it.
      Node *Next = N->Next.load(std::memory_order_acquire);
      Node *Expected = N;
      if (Head.compare_exchange_strong(Expected, Next,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        Out = N->Value;
        Domain.clear(HpSlotTop);
        Domain.retire(N, reclaimNode, this);
        ApproxCount.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
  }

  /// Racy size estimate.
  std::int64_t approxSize() const {
    const std::int64_t N = ApproxCount.load(std::memory_order_relaxed);
    return N < 0 ? 0 : N;
  }

  bool empty() const {
    return Head.load(std::memory_order_acquire) == nullptr;
  }

private:
  struct Node : HazardErasable {
    std::atomic<Node *> Next{nullptr};
    Node *FreeNext = nullptr;
    T Value{};
  };

  struct Chunk {
    Chunk *Next;
  };

  static constexpr unsigned HpSlotTop = 0;
  static constexpr std::size_t ChunkBytes = OsPageSize;
  static constexpr std::size_t NodesPerChunk =
      (ChunkBytes - sizeof(Chunk)) / sizeof(Node);
  static_assert(NodesPerChunk >= 4, "value type too large for node chunks");

  Node *acquireNode() {
    if (Memory.Alloc) {
      void *Raw = Memory.Alloc(Memory.Ctx, sizeof(Node));
      return Raw ? new (Raw) Node() : nullptr;
    }
    if (Node *N = FreeNodes.pop())
      return N;
    void *Raw = Pages.map(ChunkBytes);
    if (!Raw)
      return nullptr;
    auto *C = new (Raw) Chunk();
    C->Next = Chunks.load(std::memory_order_relaxed);
    while (!Chunks.compare_exchange_weak(C->Next, C,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
    }
    auto *Nodes = reinterpret_cast<Node *>(static_cast<char *>(Raw) +
                                           sizeof(Chunk));
    for (std::size_t I = 1; I < NodesPerChunk; ++I)
      FreeNodes.push(new (&Nodes[I]) Node());
    return new (&Nodes[0]) Node();
  }

  void releaseNode(Node *N) {
    if (Memory.Free) {
      Memory.Free(Memory.Ctx, N);
      return;
    }
    FreeNodes.push(N);
  }

  static void reclaimNode(HazardErasable *Obj, void *Ctx) {
    static_cast<LockFreeStack *>(Ctx)->releaseNode(
        static_cast<Node *>(Obj));
  }

  HazardDomain &Domain;
  NodeMemory Memory;
  PageAllocator Pages;
  TreiberStack<Node, &Node::FreeNext> FreeNodes;
  std::atomic<Chunk *> Chunks{nullptr};
  alignas(CacheLineSize) std::atomic<Node *> Head{nullptr};
  alignas(CacheLineSize) std::atomic<std::int64_t> ApproxCount{0};
};

} // namespace lfm

#endif // LFMALLOC_LOCKFREE_LOCKFREESTACK_H
