//===- lockfree/MSQueue.h - Michael-Scott lock-free FIFO queue ---*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Michael–Scott non-blocking FIFO queue (the paper's reference [20]),
/// "with optimized memory management for the purposes of the new allocator"
/// (§3.2.6): nodes come from a type-stable per-queue pool refilled straight
/// from the OS, dequeued nodes are recycled through hazard-pointer
/// retirement, and no general-purpose malloc is ever needed — the paper is
/// explicit that its list structures must not depend on the allocator they
/// implement.
///
/// Used by the FIFO lists of partial superblocks (one per size class) and by
/// the Producer-consumer benchmark/example.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LOCKFREE_MSQUEUE_H
#define LFMALLOC_LOCKFREE_MSQUEUE_H

#include "lockfree/HazardPointers.h"
#include "lockfree/TreiberStack.h"
#include "os/PageAllocator.h"
#include "schedtest/SchedPoint.h"
#include "support/Platform.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <type_traits>

namespace lfm {

/// Multi-producer multi-consumer lock-free FIFO of trivially-copyable
/// values.
///
/// Destruction contract: a queue may be destroyed only when the hazard
/// domain it uses is quiescent (no other thread is executing an operation
/// on *any* structure of that domain), because teardown drains the domain
/// to recover nodes parked in retirement. The allocator's internal queues
/// are immortal and never hit this path; tests join workers first.
template <typename T> class MSQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "MSQueue stores values by bitwise copy");

public:
  /// \param Domain hazard domain protecting node reclamation.
  /// \param ExternalPages page provider to charge node chunks to (so an
  /// embedding allocator's space meter sees them); null uses a private one.
  explicit MSQueue(HazardDomain &Domain = HazardDomain::global(),
                   PageAllocator *ExternalPages = nullptr)
      : Domain(Domain), Pages(ExternalPages ? *ExternalPages : OwnPages) {
    Node *Dummy = allocNode();
    Dummy->Next.store(nullptr, std::memory_order_relaxed);
    Head.store(Dummy, std::memory_order_relaxed);
    Tail.store(Dummy, std::memory_order_relaxed);
  }

  MSQueue(const MSQueue &) = delete;
  MSQueue &operator=(const MSQueue &) = delete;

  ~MSQueue() {
    // Recover nodes parked in hazard retirement, then release every chunk.
    Domain.drainAll();
    Chunk *C = Chunks.load(std::memory_order_relaxed);
    while (C) {
      Chunk *Next = C->Next;
      Pages.unmap(C, ChunkBytes);
      C = Next;
    }
  }

  /// Appends \p Value. Lock-free: a stalled thread cannot block others
  /// (the tail-lagging CAS lets any thread finish a half-done enqueue).
  void enqueue(T Value) {
    Node *N = allocNode();
    N->Value = Value;
    N->Next.store(nullptr, std::memory_order_relaxed);
    // Scoped after allocNode so a pool refill's TreiberPush samples do not
    // nest inside (and eat the progress slot of) this enqueue's.
    LFM_CONT_LOOP(MsqEnqueue);
    for (;;) {
      LFM_CONT_ATTEMPT(MsqEnqueue);
      LFM_SCHED_POINT(MsqEnqueue);
      Node *T1 = Domain.protect(HpSlotTail, Tail);
      Node *Next = T1->Next.load(std::memory_order_acquire);
      if (T1 != Tail.load(std::memory_order_acquire))
        continue;
      if (Next) {
        // Tail is lagging; help swing it and retry.
        Tail.compare_exchange_weak(T1, Next, std::memory_order_release,
                                   std::memory_order_relaxed);
        continue;
      }
      Node *Expected = nullptr;
      if (!LFM_SCHED_CAS_FAIL(MsqEnqueue) &&
          T1->Next.compare_exchange_weak(Expected, N,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
        Tail.compare_exchange_strong(T1, N, std::memory_order_release,
                                     std::memory_order_relaxed);
        break;
      }
    }
    LFM_CONT_DONE(MsqEnqueue);
    Domain.clear(HpSlotTail);
    ApproxCount.fetch_add(1, std::memory_order_relaxed);
  }

  /// Removes the oldest value into \p Out. \returns false if empty.
  bool dequeue(T &Out) {
    LFM_CONT_LOOP(MsqDequeue);
    for (;;) {
      LFM_CONT_ATTEMPT(MsqDequeue);
      LFM_SCHED_POINT(MsqDequeue);
      Node *H = Domain.protect(HpSlotHead, Head);
      Node *T1 = Tail.load(std::memory_order_acquire);
      Node *Next = Domain.protectWith<Node>(HpSlotNext, [&] {
        return H->Next.load(std::memory_order_acquire);
      });
      if (H != Head.load(std::memory_order_acquire))
        continue;
      if (!Next) {
        Domain.clear(HpSlotHead);
        Domain.clear(HpSlotNext);
        return false; // Queue empty (only the dummy remains).
      }
      if (H == T1) {
        // Tail is lagging behind a completed enqueue; help it.
        Tail.compare_exchange_weak(T1, Next, std::memory_order_release,
                                   std::memory_order_relaxed);
        continue;
      }
      // Read the value before the CAS: after it another dequeuer could
      // retire Next... it cannot — we hold a hazard on Next — but reading
      // first matches the published algorithm and costs nothing.
      T Value = Next->Value;
      if (!LFM_SCHED_CAS_FAIL(MsqDequeue) &&
          Head.compare_exchange_weak(H, Next, std::memory_order_release,
                                     std::memory_order_relaxed)) {
        Out = Value;
        Domain.clear(HpSlotHead);
        Domain.clear(HpSlotNext);
        Domain.retire(H, reclaimNode, this);
        ApproxCount.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
  }

  /// \returns a racy estimate of the queue length (never negative in
  /// steady state; the Producer-consumer benchmark throttles on this,
  /// matching the paper's "number of tasks in the queue exceeds 1000").
  std::int64_t approxSize() const {
    const std::int64_t N = ApproxCount.load(std::memory_order_relaxed);
    return N < 0 ? 0 : N;
  }

  /// Racy emptiness check.
  bool empty() const {
    Node *H = Head.load(std::memory_order_acquire);
    return H->Next.load(std::memory_order_acquire) == nullptr;
  }

private:
  struct Node : HazardErasable {
    std::atomic<Node *> Next;
    Node *FreeNext;
    T Value;
  };

  struct Chunk {
    Chunk *Next;
  };

  static constexpr unsigned HpSlotHead = 0;
  static constexpr unsigned HpSlotTail = 1;
  static constexpr unsigned HpSlotNext = 2;

  static constexpr std::size_t ChunkBytes = OsPageSize;
  static constexpr std::size_t NodesPerChunk =
      (ChunkBytes - sizeof(Chunk)) / sizeof(Node);
  static_assert(NodesPerChunk >= 8, "value type too large for node chunks");

  Node *allocNode() {
    if (Node *N = FreeNodes.pop())
      return N;
    refillPool();
    Node *N = FreeNodes.pop();
    if (!N) {
      std::fprintf(stderr, "lfmalloc: MSQueue node pool exhausted\n");
      std::abort();
    }
    return N;
  }

  void refillPool() {
    void *Raw = Pages.map(ChunkBytes);
    if (!Raw) {
      std::fprintf(stderr, "lfmalloc: OS refused MSQueue node chunk\n");
      std::abort();
    }
    Chunk *C = static_cast<Chunk *>(Raw);
    C->Next = Chunks.load(std::memory_order_relaxed);
    while (!Chunks.compare_exchange_weak(C->Next, C,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
    }
    Node *Nodes = reinterpret_cast<Node *>(
        reinterpret_cast<char *>(Raw) + sizeof(Chunk));
    for (std::size_t I = 0; I < NodesPerChunk; ++I)
      FreeNodes.push(&Nodes[I]);
  }

  static void reclaimNode(HazardErasable *Obj, void *Ctx) {
    auto *Self = static_cast<MSQueue *>(Ctx);
    Self->FreeNodes.push(static_cast<Node *>(Obj));
  }

  HazardDomain &Domain;
  PageAllocator OwnPages;
  PageAllocator &Pages;
  TreiberStack<Node, &Node::FreeNext> FreeNodes;
  std::atomic<Chunk *> Chunks{nullptr};
  alignas(CacheLineSize) std::atomic<Node *> Head{nullptr};
  alignas(CacheLineSize) std::atomic<Node *> Tail{nullptr};
  alignas(CacheLineSize) std::atomic<std::int64_t> ApproxCount{0};
};

} // namespace lfm

#endif // LFMALLOC_LOCKFREE_MSQUEUE_H
