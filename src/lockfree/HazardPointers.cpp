//===- lockfree/HazardPointers.cpp - Safe memory reclamation --------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lockfree/HazardPointers.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <new>

#include <pthread.h>

using namespace lfm;

namespace {

std::atomic<std::uint64_t> NextDomainId{1};

/// Immortal registry of live domain ids. Thread-exit cleanup consults it
/// so a cached record pointer into an already-destroyed domain (e.g. a
/// test-scoped domain that died before the thread) is skipped instead of
/// dereferenced. Lock-free: slots hold an id or 0.
class DomainRegistry {
public:
  static constexpr unsigned Capacity = 4096;

  static DomainRegistry &instance() {
    static DomainRegistry Registry;
    return Registry;
  }

  void add(std::uint64_t Id) {
    for (auto &Slot : Slots) {
      std::uint64_t Expected = 0;
      if (Slot.compare_exchange_strong(Expected, Id,
                                       std::memory_order_acq_rel))
        return;
    }
    std::fprintf(stderr, "lfmalloc: more than %u live hazard domains\n",
                 Capacity);
    std::abort();
  }

  void remove(std::uint64_t Id) {
    for (auto &Slot : Slots)
      if (Slot.load(std::memory_order_relaxed) == Id) {
        Slot.store(0, std::memory_order_release);
        return;
      }
  }

  bool isLive(std::uint64_t Id) const {
    for (const auto &Slot : Slots)
      if (Slot.load(std::memory_order_acquire) == Id)
        return true;
    return false;
  }

private:
  DomainRegistry() = default;

  std::atomic<std::uint64_t> Slots[Capacity] = {};
};

} // namespace

namespace lfm {

/// Per-thread map from domain to acquired record. Trivially destructible
/// by design: records are released through a pthread key destructor, NOT
/// a C++ TLS destructor. The distinction matters because other pthread
/// key destructors (the allocator's thread-cache exit drain) legitimately
/// run hazard-protected operations during thread teardown — after
/// __call_tls_dtors has already run. A C++ destructor here would mean
/// such late use either touches a destroyed object or, on a thread whose
/// first hazard use IS the teardown path, registers with
/// __cxa_thread_atexit too late to ever run (leaking the registration
/// and abandoning the record). The key-destructor protocol handles both:
/// every insert re-arms the key, and pthreads re-runs destructors while
/// any key value is non-null, so a record acquired during another key's
/// destructor is released one iteration later.
struct HazardThreadCache {
  struct Entry {
    HazardDomain *Domain;
    std::uint64_t Id;
    void *Record; // HazardDomain::Record*, type-erased to keep this POD-ish.
  };
  static constexpr unsigned Capacity = 64;

  Entry Entries[Capacity] = {};
  unsigned Count = 0;

  void releaseAll();

  void *lookup(const HazardDomain *Domain, std::uint64_t Id) const {
    for (unsigned I = 0; I < Count; ++I)
      if (Entries[I].Domain == Domain && Entries[I].Id == Id)
        return Entries[I].Record;
    return nullptr;
  }

  void insert(HazardDomain *Domain, std::uint64_t Id, void *Record) {
    if (Count >= Capacity) {
      // Evict entries for domains that no longer exist (their records died
      // with them); common when tests construct many short-lived domains.
      unsigned Kept = 0;
      for (unsigned I = 0; I < Count; ++I)
        if (DomainRegistry::instance().isLive(Entries[I].Id))
          Entries[Kept++] = Entries[I];
      Count = Kept;
    }
    if (Count >= Capacity) {
      std::fprintf(stderr,
                   "lfmalloc: thread uses more than %u hazard domains\n",
                   Capacity);
      std::abort();
    }
    Entries[Count++] = Entry{Domain, Id, Record};
    armExitRelease(this);
  }

  static void armExitRelease(HazardThreadCache *Cache);
};

} // namespace lfm

namespace {

thread_local HazardThreadCache TlsHazardCache;

pthread_key_t HazardExitKey;
pthread_once_t HazardExitKeyOnce = PTHREAD_ONCE_INIT;

extern "C" void lfmHazardExitRelease(void *Arg) {
  static_cast<HazardThreadCache *>(Arg)->releaseAll();
}

void makeHazardExitKey() {
  if (pthread_key_create(&HazardExitKey, lfmHazardExitRelease) != 0) {
    // Without the key, exiting threads abandon their records (bounded by
    // MaxRecords); keep running rather than aborting at first use.
    std::fprintf(stderr, "lfmalloc: cannot create hazard exit key\n");
  }
}

} // namespace

void HazardThreadCache::armExitRelease(HazardThreadCache *Cache) {
  pthread_once(&HazardExitKeyOnce, makeHazardExitKey);
  // Re-armed on EVERY insert: pthreads nulls the value before each
  // destructor pass, so a record acquired inside another key's destructor
  // re-sets it and earns one more pass.
  pthread_setspecific(HazardExitKey, Cache);
}

void HazardThreadCache::releaseAll() {
  for (unsigned I = 0; I < Count; ++I) {
    // Domains this thread outlived are gone along with their records;
    // releasing into them would be a use-after-free. The registry check
    // is exact because domain ids are never reused.
    if (!DomainRegistry::instance().isLive(Entries[I].Id))
      continue;
    Entries[I].Domain->releaseRecord(
        static_cast<HazardDomain::Record *>(Entries[I].Record));
  }
  Count = 0;
}

HazardDomain::HazardDomain()
    : DomainId(NextDomainId.fetch_add(1, std::memory_order_relaxed)) {
  Records = static_cast<Record *>(Pages.map(sizeof(Record) * MaxRecords));
  if (!Records) {
    std::fprintf(stderr, "lfmalloc: cannot map hazard records\n");
    std::abort();
  }
  // mmap memory is zeroed: Slots null, Active false, retired lists empty.
  DomainRegistry::instance().add(DomainId);
}

HazardDomain::~HazardDomain() {
  // All user threads are gone per the lifetime contract, so every retired
  // object is reclaimable.
  drainAll();
  DomainRegistry::instance().remove(DomainId);
  Pages.unmap(Records, sizeof(Record) * MaxRecords);
}

HazardDomain &HazardDomain::global() {
  // Immortal storage: constructed on first use, never destroyed, so threads
  // exiting at any point in process shutdown can still release records
  // safely (and no static destructor ordering hazards exist).
  alignas(HazardDomain) static unsigned char Storage[sizeof(HazardDomain)];
  static HazardDomain *Instance = new (Storage) HazardDomain();
  return *Instance;
}

HazardDomain::Record *HazardDomain::myRecord() {
  if (void *Cached = TlsHazardCache.lookup(this, DomainId))
    return static_cast<Record *>(Cached);

  // Try to adopt a released record first.
  const unsigned Watermark =
      RecordWatermarkCount.load(std::memory_order_acquire);
  for (unsigned I = 0; I < Watermark; ++I) {
    bool Expected = false;
    if (!Records[I].Active.load(std::memory_order_relaxed) &&
        Records[I].Active.compare_exchange_strong(
            Expected, true, std::memory_order_acq_rel)) {
      TlsHazardCache.insert(this, DomainId, &Records[I]);
      return &Records[I];
    }
  }

  // Mint a fresh record.
  const unsigned Mine =
      RecordWatermarkCount.fetch_add(1, std::memory_order_acq_rel);
  if (Mine >= MaxRecords) {
    std::fprintf(stderr, "lfmalloc: more than %u threads in hazard domain\n",
                 MaxRecords);
    std::abort();
  }
  Records[Mine].Active.store(true, std::memory_order_release);
  TlsHazardCache.insert(this, DomainId, &Records[Mine]);
  return &Records[Mine];
}

void HazardDomain::publishHazard(unsigned Slot, void *Ptr) {
  assert(Slot < SlotsPerThread && "hazard slot out of range");
  Record *Rec = myRecord();
  Rec->Slots[Slot].store(Ptr, std::memory_order_relaxed);
  // Order the publication before the validating re-read in protect() and
  // against the scanner's collection pass. This fence pairs with the one at
  // the top of scan().
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void HazardDomain::clear(unsigned Slot) {
  assert(Slot < SlotsPerThread && "hazard slot out of range");
  myRecord()->Slots[Slot].store(nullptr, std::memory_order_release);
}

void HazardDomain::clearAll() {
  Record *Rec = myRecord();
  for (unsigned I = 0; I < SlotsPerThread; ++I)
    Rec->Slots[I].store(nullptr, std::memory_order_release);
}

void HazardDomain::retire(HazardErasable *Obj,
                          void (*Reclaim)(HazardErasable *, void *),
                          void *Ctx) {
  assert(Obj && Reclaim && "retire needs an object and a reclaimer");
  Obj->Reclaim = Reclaim;
  Obj->ReclaimCtx = Ctx;
  Record *Rec = myRecord();
  Obj->RetiredNext = Rec->RetiredHead;
  Rec->RetiredHead = Obj;
  const std::uint32_t Pending =
      Rec->RetiredCount.load(std::memory_order_relaxed) + 1;
  Rec->RetiredCount.store(Pending, std::memory_order_relaxed);
  if (Pending >= ScanThreshold)
    scan(Rec);
}

void HazardDomain::scan(Record *Rec) {
  // Stage 1: snapshot every active hazard. Pairs with the fence in
  // publishHazard(): any protect() that validated before this fence is
  // visible here; any that validates after will re-read the source and
  // cannot observe an object we are about to reclaim (it was unlinked
  // before retire()).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  void *Hazards[MaxRecords * SlotsPerThread];
  unsigned NumHazards = 0;
  const unsigned Watermark =
      RecordWatermarkCount.load(std::memory_order_acquire);
  for (unsigned I = 0; I < Watermark; ++I) {
    for (unsigned S = 0; S < SlotsPerThread; ++S) {
      // Read slots of inactive records too: releaseRecord() clears them,
      // but a racing release could otherwise hide a still-set hazard.
      if (void *Ptr = Records[I].Slots[S].load(std::memory_order_acquire))
        Hazards[NumHazards++] = Ptr;
    }
  }
  std::sort(Hazards, Hazards + NumHazards);

  // Stage 2: reclaim every retired object not present in the snapshot.
  // Detach the list first: reclaim callbacks may re-enter retire() (e.g.
  // freeing a queue node can empty a superblock, which retires its
  // descriptor), appending to Rec->RetiredHead while we work.
  HazardErasable *Survivors = nullptr;
  std::uint32_t SurvivorCount = 0;
  HazardErasable *Obj = Rec->RetiredHead;
  Rec->RetiredHead = nullptr;
  Rec->RetiredCount.store(0, std::memory_order_relaxed);
  while (Obj) {
    HazardErasable *Next = Obj->RetiredNext;
    if (std::binary_search(Hazards, Hazards + NumHazards,
                           static_cast<void *>(Obj))) {
      Obj->RetiredNext = Survivors;
      Survivors = Obj;
      ++SurvivorCount;
    } else {
      Obj->Reclaim(Obj, Obj->ReclaimCtx);
      Reclaims.fetch_add(1, std::memory_order_relaxed);
    }
    Obj = Next;
  }
  Scans.fetch_add(1, std::memory_order_relaxed);
  // Prepend survivors to whatever re-entrant retires accumulated — do
  // not overwrite, or those objects would leak unreclaimed.
  if (Survivors) {
    HazardErasable *Tail = Survivors;
    while (Tail->RetiredNext)
      Tail = Tail->RetiredNext;
    Tail->RetiredNext = Rec->RetiredHead;
    Rec->RetiredHead = Survivors;
    Rec->RetiredCount.store(
        Rec->RetiredCount.load(std::memory_order_relaxed) + SurvivorCount,
        std::memory_order_relaxed);
  }
}

void HazardDomain::releaseRecord(Record *Rec) {
  for (unsigned I = 0; I < SlotsPerThread; ++I)
    Rec->Slots[I].store(nullptr, std::memory_order_release);
  // Try to shed this thread's retired backlog before handing the record
  // (and any survivors, which the next owner adopts) back to the pool.
  if (Rec->RetiredCount.load(std::memory_order_relaxed) > 0)
    scan(Rec);
  Rec->Active.store(false, std::memory_order_release);
}

void HazardDomain::drainAll() {
  // Quiescent-state operation: with no concurrent users, scanning each
  // record reclaims everything no longer protected (normally everything).
  const unsigned Watermark =
      RecordWatermarkCount.load(std::memory_order_acquire);
  for (unsigned I = 0; I < Watermark; ++I)
    if (Records[I].RetiredHead)
      scan(&Records[I]);
}

std::uint64_t HazardDomain::retiredCount() const {
  std::uint64_t Total = 0;
  const unsigned Watermark =
      RecordWatermarkCount.load(std::memory_order_acquire);
  for (unsigned I = 0; I < Watermark; ++I)
    Total += Records[I].RetiredCount.load(std::memory_order_relaxed);
  return Total;
}

unsigned HazardDomain::recordWatermark() const {
  return RecordWatermarkCount.load(std::memory_order_relaxed);
}
