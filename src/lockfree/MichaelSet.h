//===- lockfree/MichaelSet.h - Lock-free list-based set ----------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Michael's lock-free ordered list-based set (the paper's reference [16],
/// "High Performance Dynamic Lock-Free Hash Tables and List-Based Sets",
/// SPAA 2002) with hazard-pointer memory reclamation [17,19] — the
/// structure the allocator paper's §3.2.6 names for LIFO partial lists
/// with middle removal, and the centerpiece of its §5 claim: with a
/// lock-free allocator plus hazard pointers, "linked lists and hash
/// tables [16,21] [can] be both completely dynamic and completely
/// lock-free".
///
/// Algorithm: a sorted singly-linked list whose next pointers carry a
/// logical-deletion mark in their low bit. remove() marks, then either
/// the remover or any later traversal physically unlinks; find() runs
/// with three hazard pointers (prev-node, cur, next) and restarts when a
/// validated snapshot is invalidated.
///
/// Node storage is pluggable (NodeMemory): by default an internal
/// type-stable page pool; the lock-free-composition example instead wires
/// it straight to lfmalloc, making every node a first-class malloc'd
/// block that is freed through hazard retirement.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LOCKFREE_MICHAELSET_H
#define LFMALLOC_LOCKFREE_MICHAELSET_H

#include "lockfree/HazardPointers.h"
#include "lockfree/TreiberStack.h"
#include "os/PageAllocator.h"
#include "support/Platform.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <type_traits>

namespace lfm {

/// Pluggable node storage for MichaelSet: plain function pointers so the
/// lockfree layer needs no dependency on any allocator interface.
struct NodeMemory {
  void *(*Alloc)(void *Ctx, std::size_t Bytes);
  void (*Free)(void *Ctx, void *Ptr);
  void *Ctx;
};

/// Lock-free sorted set of totally-ordered, trivially-copyable keys.
///
/// Linearizable insert / remove / contains; all operations lock-free.
/// Destruction contract matches MSQueue: quiesce the hazard domain first.
template <typename KeyT> class MichaelSet {
  static_assert(std::is_trivially_copyable_v<KeyT>,
                "keys are stored by bitwise copy");

public:
  /// \param Domain hazard domain for traversal protection and node
  /// retirement.
  /// \param Memory external node storage; default uses an internal pool.
  explicit MichaelSet(HazardDomain &Domain = HazardDomain::global(),
                      NodeMemory Memory = NodeMemory{nullptr, nullptr,
                                                     nullptr})
      : Domain(Domain), Memory(Memory) {}

  MichaelSet(const MichaelSet &) = delete;
  MichaelSet &operator=(const MichaelSet &) = delete;

  ~MichaelSet() {
    Domain.drainAll();
    // Free remaining (unmarked) nodes, then the pool chunks.
    std::uintptr_t Word = Head.load(std::memory_order_relaxed);
    while (Node *N = ptrOf(Word)) {
      Word = N->NextMark.load(std::memory_order_relaxed);
      releaseNode(N);
    }
    Chunk *C = Chunks.load(std::memory_order_relaxed);
    while (C) {
      Chunk *Next = C->Next;
      Pages.unmap(C, ChunkBytes);
      C = Next;
    }
  }

  /// Inserts \p Key. \returns false if already present. Lock-free.
  bool insert(KeyT Key) {
    Node *N = acquireNode();
    if (!N)
      return false; // Out of node memory.
    N->Key = Key;
    for (;;) {
      FindResult R = find(Key);
      if (R.Found) {
        Domain.clearAll();
        releaseNode(N);
        return false;
      }
      N->NextMark.store(packPtr(R.Cur, false), std::memory_order_relaxed);
      if (casLink(R.Prev, R.Cur, N)) {
        Domain.clearAll();
        Size.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }

  /// Removes \p Key. \returns false if absent. Lock-free.
  bool remove(KeyT Key) {
    for (;;) {
      FindResult R = find(Key);
      if (!R.Found) {
        Domain.clearAll();
        return false;
      }
      // Logically delete: mark Cur's next pointer.
      const std::uintptr_t Next =
          R.Cur->NextMark.load(std::memory_order_acquire);
      if (Next & MarkBit)
        continue; // Someone else is deleting it; re-find.
      std::uintptr_t Expected = Next;
      if (!R.Cur->NextMark.compare_exchange_strong(
              Expected, Next | MarkBit, std::memory_order_acq_rel,
              std::memory_order_relaxed))
        continue;
      Size.fetch_sub(1, std::memory_order_relaxed);
      // Physically unlink; on failure a later find() will clean up.
      if (casLink(R.Prev, R.Cur, ptrOf(Next)))
        Domain.retire(R.Cur, reclaimNode, this);
      else
        find(Key);
      Domain.clearAll();
      return true;
    }
  }

  /// \returns true if \p Key is in the set. Lock-free.
  bool contains(KeyT Key) {
    const bool Found = find(Key).Found;
    Domain.clearAll();
    return Found;
  }

  /// Racy cardinality estimate (exact when quiescent).
  std::int64_t size() const {
    const std::int64_t N = Size.load(std::memory_order_relaxed);
    return N < 0 ? 0 : N;
  }

  /// Quiescent-state iteration (tests, debugging): calls \p Fn on every
  /// unmarked key in ascending order.
  void forEachQuiescent(const std::function<void(const KeyT &)> &Fn) const {
    std::uintptr_t Word = Head.load(std::memory_order_relaxed);
    while (Node *N = ptrOf(Word)) {
      const std::uintptr_t Next =
          N->NextMark.load(std::memory_order_relaxed);
      if (!(Next & MarkBit))
        Fn(N->Key);
      Word = Next;
    }
  }

private:
  struct Node : HazardErasable {
    std::atomic<std::uintptr_t> NextMark{0};
    Node *FreeNext = nullptr;
    KeyT Key{};
  };

  struct Chunk {
    Chunk *Next;
  };

  struct FindResult {
    std::atomic<std::uintptr_t> *Prev; ///< Link holding Cur.
    Node *Cur;                         ///< First node with Key >= key.
    bool Found;                        ///< Cur holds exactly key.
  };

  static constexpr std::uintptr_t MarkBit = 1;
  static constexpr unsigned HpCur = 0;
  static constexpr unsigned HpNext = 1;
  static constexpr unsigned HpPrevNode = 2;
  static constexpr std::size_t ChunkBytes = OsPageSize;
  static constexpr std::size_t NodesPerChunk =
      (ChunkBytes - sizeof(Chunk)) / sizeof(Node);
  static_assert(NodesPerChunk >= 4, "key type too large for node chunks");

  static Node *ptrOf(std::uintptr_t Word) {
    return reinterpret_cast<Node *>(Word & ~MarkBit);
  }

  static std::uintptr_t packPtr(Node *N, bool Marked) {
    return reinterpret_cast<std::uintptr_t>(N) | (Marked ? MarkBit : 0);
  }

  bool casLink(std::atomic<std::uintptr_t> *Link, Node *Expected,
               Node *Desired) {
    std::uintptr_t Want = packPtr(Expected, false);
    return Link->compare_exchange_strong(Want, packPtr(Desired, false),
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }

  /// Michael's Find: positions on the first node with Key >= key, with
  /// hazards covering (prev-node, cur, next). Unlinks marked nodes en
  /// route. Hazard slots ROTATE as the traversal advances — the successor
  /// is already protected when it becomes current, so each step costs one
  /// hazard publication, not three. On return the hazards are still held
  /// so the caller's CAS is safe; callers clear them.
  FindResult find(KeyT Key) {
    unsigned SlotPrev = HpPrevNode, SlotCur = HpCur, SlotNext = HpNext;
  TryAgain:
    std::atomic<std::uintptr_t> *Prev = &Head;
    // Protect the head node (publish-validate; Head is never marked).
    Node *Cur;
    for (std::uintptr_t W = Prev->load(std::memory_order_acquire);;) {
      Cur = ptrOf(W);
      if (!Cur)
        break;
      Domain.publish(SlotCur, Cur);
      const std::uintptr_t Again = Prev->load(std::memory_order_acquire);
      if (Again == W)
        break;
      W = Again;
    }
    for (;;) {
      if (!Cur)
        return FindResult{Prev, nullptr, false};
      // Snapshot Cur's link and protect the successor (publish-validate
      // by hand: the mark bit travels with the pointer).
      std::uintptr_t NextWord =
          Cur->NextMark.load(std::memory_order_acquire);
      for (;;) {
        Domain.publish(SlotNext, ptrOf(NextWord));
        const std::uintptr_t Again =
            Cur->NextMark.load(std::memory_order_acquire);
        if (Again == NextWord)
          break;
        NextWord = Again;
      }
      // Validate that Prev still points (unmarked) at Cur; otherwise a
      // concurrent unlink or insert invalidated the snapshot.
      if (Prev->load(std::memory_order_acquire) != packPtr(Cur, false))
        goto TryAgain;
      if (NextWord & MarkBit) {
        // Cur is logically deleted: unlink it here, then step onto the
        // (already protected) successor.
        if (!casLink(Prev, Cur, ptrOf(NextWord)))
          goto TryAgain;
        Domain.retire(Cur, reclaimNode, this);
        Cur = ptrOf(NextWord);
        std::swap(SlotCur, SlotNext);
        continue;
      }
      if (!(Cur->Key < Key))
        return FindResult{Prev, Cur, !(Key < Cur->Key)};
      // Advance: Cur becomes the protected prev-node, the successor the
      // protected cur; the stale prev-node slot is recycled for next.
      Prev = &Cur->NextMark;
      const unsigned Recycled = SlotPrev;
      SlotPrev = SlotCur;
      SlotCur = SlotNext;
      SlotNext = Recycled;
      Cur = ptrOf(NextWord);
    }
  }

  Node *acquireNode() {
    if (Memory.Alloc) {
      void *Raw = Memory.Alloc(Memory.Ctx, sizeof(Node));
      return Raw ? new (Raw) Node() : nullptr;
    }
    if (Node *N = FreeNodes.pop()) {
      N->NextMark.store(0, std::memory_order_relaxed);
      return N;
    }
    void *Raw = Pages.map(ChunkBytes);
    if (!Raw)
      return nullptr;
    auto *C = new (Raw) Chunk();
    C->Next = Chunks.load(std::memory_order_relaxed);
    while (!Chunks.compare_exchange_weak(C->Next, C,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
    }
    auto *Nodes = reinterpret_cast<Node *>(static_cast<char *>(Raw) +
                                           sizeof(Chunk));
    for (std::size_t I = 1; I < NodesPerChunk; ++I)
      FreeNodes.push(new (&Nodes[I]) Node());
    return new (&Nodes[0]) Node();
  }

  void releaseNode(Node *N) {
    if (Memory.Free) {
      Memory.Free(Memory.Ctx, N);
      return;
    }
    FreeNodes.push(N);
  }

  static void reclaimNode(HazardErasable *Obj, void *Ctx) {
    static_cast<MichaelSet *>(Ctx)->releaseNode(static_cast<Node *>(Obj));
  }

  HazardDomain &Domain;
  NodeMemory Memory;
  PageAllocator Pages;
  TreiberStack<Node, &Node::FreeNext> FreeNodes;
  std::atomic<Chunk *> Chunks{nullptr};
  alignas(CacheLineSize) std::atomic<std::uintptr_t> Head{0};
  alignas(CacheLineSize) std::atomic<std::int64_t> Size{0};
};

} // namespace lfm

#endif // LFMALLOC_LOCKFREE_MICHAELSET_H
