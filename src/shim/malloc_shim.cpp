//===- shim/malloc_shim.cpp - LD_PRELOAD malloc replacement ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Drop-in replacement for the C allocation API, for use via LD_PRELOAD:
//
//   LD_PRELOAD=/path/to/liblfmalloc_preload.so some_program
//
// Every allocation in the process — including libc internals and C++
// operator new, which routes through malloc in libstdc++ — then goes
// through the completely lock-free allocator. This is safe to interpose
// from process start because the allocator is self-contained: its own
// implementation performs no heap allocation (only mmap), so there is no
// bootstrap recursion and no dlsym trampoline is needed.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/FacadeState.h"
#include "lfmalloc/LFAllocator.h"
#include "lfmalloc/LFMalloc.h"
#include "profiling/HeapTopology.h"
#include "support/RuntimeConfig.h"
#include "trace/AllocTrace.h"

#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <csignal>

using namespace lfm;

extern "C" {

// The trace::on* hooks cost one predicted-false branch when no flight
// recording is active (trace/AllocTrace.h) and compile to nothing under
// LFM_ALLOC_TRACE=0. Ordering contract: alloc hooks run AFTER the
// operation (the result is part of the record), free/realloc hooks erase
// the address→token mapping BEFORE the block can be recycled.

void *malloc(size_t Bytes) {
  void *Ptr = defaultAllocator().allocate(Bytes);
  trace::onMalloc(Ptr, Bytes);
  return Ptr;
}

void free(void *Ptr) {
  trace::onFree(Ptr);
  defaultAllocator().deallocate(Ptr);
}

void *calloc(size_t Num, size_t Size) {
  void *Ptr = defaultAllocator().allocateZeroed(Num, Size);
  trace::onCalloc(Ptr, Num, Size);
  return Ptr;
}

void *realloc(void *Ptr, size_t Bytes) {
  const std::uint64_t OldTok = trace::beforeRealloc(Ptr);
  void *NewPtr = defaultAllocator().reallocate(Ptr, Bytes);
  trace::afterRealloc(Ptr, OldTok, NewPtr, Bytes);
  return NewPtr;
}

void *reallocarray(void *Ptr, size_t Num, size_t Size) {
  if (Size != 0 && Num > ~size_t{0} / Size) {
    errno = ENOMEM;
    return nullptr;
  }
  const std::uint64_t OldTok = trace::beforeRealloc(Ptr);
  void *NewPtr = defaultAllocator().reallocate(Ptr, Num * Size);
  trace::afterRealloc(Ptr, OldTok, NewPtr, Num * Size);
  return NewPtr;
}

void *aligned_alloc(size_t Alignment, size_t Bytes) {
  if (!isPowerOf2(Alignment)) {
    errno = EINVAL;
    return nullptr;
  }
  void *Ptr = defaultAllocator().allocateAligned(Alignment, Bytes);
  trace::onAlignedAlloc(Ptr, Alignment, Bytes);
  return Ptr;
}

int posix_memalign(void **Out, size_t Alignment, size_t Bytes) {
  if (!isPowerOf2(Alignment) || Alignment % sizeof(void *) != 0)
    return EINVAL;
  void *Ptr = defaultAllocator().allocateAligned(Alignment, Bytes);
  trace::onAlignedAlloc(Ptr, Alignment, Bytes);
  if (!Ptr)
    return ENOMEM;
  *Out = Ptr;
  return 0;
}

void *memalign(size_t Alignment, size_t Bytes) {
  if (!isPowerOf2(Alignment)) {
    errno = EINVAL;
    return nullptr;
  }
  void *Ptr = defaultAllocator().allocateAligned(Alignment, Bytes);
  trace::onAlignedAlloc(Ptr, Alignment, Bytes);
  return Ptr;
}

void *valloc(size_t Bytes) {
  void *Ptr = defaultAllocator().allocateAligned(OsPageSize, Bytes);
  trace::onAlignedAlloc(Ptr, OsPageSize, Bytes);
  return Ptr;
}

void *pvalloc(size_t Bytes) {
  const size_t Rounded = alignUp(Bytes, OsPageSize);
  void *Ptr = defaultAllocator().allocateAligned(OsPageSize, Rounded);
  trace::onAlignedAlloc(Ptr, OsPageSize, Rounded);
  return Ptr;
}

size_t malloc_usable_size(void *Ptr) {
  return Ptr ? defaultAllocator().usableSize(Ptr) : 0;
}

// glibc's malloc_trim(pad) releases free heap memory back to the system,
// keeping up to pad bytes; ours trims the retained superblock cache the
// same way (lock-free, madvise-based). Returns 1 when memory was
// released, matching glibc.
int malloc_trim(size_t Pad) { return lf_malloc_trim(Pad); }

// glibc's malloc_stats() prints arena statistics to stderr; ours prints
// the telemetry metrics JSON (counters require LFM_STATS=1 or LFM_TRACE=1
// in the environment at first allocation).
void malloc_stats(void) { defaultAllocator().metricsJson(stderr); }

// glibc's malloc_info() emits arena state as XML. We keep the call shape
// (Options must be 0, Stream non-null) but emit our own dialect, version
// "lfmalloc-1", carrying the heap-topology census: glibc's <arena>/<bin>
// vocabulary has no sensible mapping onto superblocks and size classes.
int malloc_info(int Options, FILE *Stream) {
  if (Options != 0 || Stream == nullptr) {
    errno = EINVAL;
    return -1;
  }
  profiling::TopologySnapshot Topo;
  defaultAllocator().topologySnapshot(Topo);
  std::fprintf(Stream, "<malloc version=\"lfmalloc-1\">\n");
  std::fprintf(Stream,
               "<heap superblocks=\"%llu\" cached=\"%llu\" blocks=\"%llu\" "
               "used=\"%llu\"/>\n",
               static_cast<unsigned long long>(Topo.TotalSuperblocks),
               static_cast<unsigned long long>(Topo.CachedSuperblocks),
               static_cast<unsigned long long>(Topo.TotalBlocks),
               static_cast<unsigned long long>(Topo.TotalUsedBlocks));
  std::fprintf(Stream,
               "<system type=\"current\" size=\"%llu\"/>\n"
               "<system type=\"max\" size=\"%llu\"/>\n",
               static_cast<unsigned long long>(Topo.Space.BytesInUse),
               static_cast<unsigned long long>(Topo.Space.PeakBytes));
  for (unsigned C = 0; C < Topo.ClassCount; ++C) {
    const profiling::ClassTopology &CT = Topo.Classes[C];
    if (CT.Superblocks == 0)
      continue;
    std::fprintf(Stream,
                 "<sizeclass size=\"%llu\" superblocks=\"%llu\" "
                 "blocks=\"%llu\" used=\"%llu\"/>\n",
                 static_cast<unsigned long long>(CT.BlockSize),
                 static_cast<unsigned long long>(CT.Superblocks),
                 static_cast<unsigned long long>(CT.TotalBlocks),
                 static_cast<unsigned long long>(CT.UsedBlocks));
  }
  std::fprintf(Stream, "</malloc>\n");
  return 0;
}

} // extern "C"

namespace {

// Which SIGUSR2/atexit artifacts apply, decided once at init so the signal
// handler itself stays branch-on-cached-bool simple (no getenv, no
// allocator queries from signal context).
bool DumpProfileOnSignal = false;
bool DumpLatencyOnSignal = false;

// SIGUSR2 → async-signal-safe dumps: the heap profile (profiler builds)
// and the Prometheus latency/metrics exposition (stats builds). Everything
// on both paths is raw-fd I/O over pre-cached state, so running it from a
// handler is sound; errno is preserved for the interrupted code.
void sigusr2Handler(int) {
  const int Saved = errno;
  if (DumpProfileOnSignal)
    lf_malloc_heap_profile_dump();
  if (DumpLatencyOnSignal)
    lf_malloc_latency_dump();
  // One atomic store; a no-op unless a flight recording is active. The
  // writer thread flushes on its next wakeup (~25 ms).
  trace::requestAsyncFlush();
  errno = Saved;
}

void leakReportAtExit() {
  lf_malloc_leak_report();
  // A leak report at exit is a post-mortem; the latency exposition is the
  // other half of that story, so emit it alongside when it has data.
  if (DumpLatencyOnSignal)
    lf_malloc_latency_dump();
}

// Shim initialization beyond the allocator itself: signal-dump handler,
// the atexit leak report, and the background stats exporter. This runs as
// an ELF constructor — after the allocator can serve (it self-initializes
// on first malloc, which libc may already have issued) but deliberately
// NOT inside defaultAllocator()'s static-init guard, where atexit's and
// pthread_create's own allocations could deadlock.
__attribute__((constructor)) void shimInit() {
  LFAllocator &Alloc = defaultAllocator();
  DumpProfileOnSignal = Alloc.profilerEnabled();
  // The Prometheus exposition carries both the latency and the contention
  // histogram families, so either recorder makes the SIGUSR2 dump (and the
  // exit-time exposition) worth emitting.
  DumpLatencyOnSignal = Alloc.latencyEnabled() || Alloc.contentionEnabled();
  // LFM_TRACE_RECORD=<path>: flight-record the whole process lifetime.
  // Routed through lf_malloc_ctl so the env path and the programmatic
  // path ("trace.start") are one code path; the atexit hook installed by
  // the recorder flushes and publishes the file at process exit.
  const char *TracePath = config::varRaw(config::Var::TraceRecord);
  bool TraceStarted = false;
  if (TracePath != nullptr && *TracePath != '\0')
    TraceStarted = lf_malloc_ctl("trace.start", nullptr, nullptr,
                                 const_cast<char *>(TracePath),
                                 std::strlen(TracePath) + 1) == 0;
  if (DumpProfileOnSignal || DumpLatencyOnSignal || TraceStarted) {
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = sigusr2Handler;
    sigemptyset(&SA.sa_mask);
    SA.sa_flags = SA_RESTART;
    sigaction(SIGUSR2, &SA, nullptr);
  }
  if (config::varFlag(config::Var::LeakReport)) {
    detail::LeakReportRequested.store(true, std::memory_order_relaxed);
    std::atexit(leakReportAtExit);
  }
  std::uint64_t IntervalMs = 0;
  if (config::varU64(config::Var::StatsIntervalMs, IntervalMs) &&
      IntervalMs > 0)
    lf_malloc_ctl("exporter.start", nullptr, nullptr, &IntervalMs,
                  sizeof(IntervalMs));
}

} // namespace
