//===- shim/malloc_shim.cpp - LD_PRELOAD malloc replacement ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Drop-in replacement for the C allocation API, for use via LD_PRELOAD:
//
//   LD_PRELOAD=/path/to/liblfmalloc_preload.so some_program
//
// Every allocation in the process — including libc internals and C++
// operator new, which routes through malloc in libstdc++ — then goes
// through the completely lock-free allocator. This is safe to interpose
// from process start because the allocator is self-contained: its own
// implementation performs no heap allocation (only mmap), so there is no
// bootstrap recursion and no dlsym trampoline is needed.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/FacadeState.h"
#include "lfmalloc/LFAllocator.h"
#include "lfmalloc/LFMalloc.h"
#include "profiling/HeapTopology.h"
#include "support/RuntimeConfig.h"
#include "telemetry/DumpSignal.h"
#include "telemetry/ShmStats.h"
#include "trace/AllocTrace.h"

#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace lfm;

extern "C" {

// The trace::on* hooks cost one predicted-false branch when no flight
// recording is active (trace/AllocTrace.h) and compile to nothing under
// LFM_ALLOC_TRACE=0. Ordering contract: alloc hooks run AFTER the
// operation (the result is part of the record), free/realloc hooks erase
// the address→token mapping BEFORE the block can be recycled.

void *malloc(size_t Bytes) {
  void *Ptr = defaultAllocator().allocate(Bytes);
  trace::onMalloc(Ptr, Bytes);
  return Ptr;
}

void free(void *Ptr) {
  trace::onFree(Ptr);
  defaultAllocator().deallocate(Ptr);
}

void *calloc(size_t Num, size_t Size) {
  void *Ptr = defaultAllocator().allocateZeroed(Num, Size);
  trace::onCalloc(Ptr, Num, Size);
  return Ptr;
}

void *realloc(void *Ptr, size_t Bytes) {
  const std::uint64_t OldTok = trace::beforeRealloc(Ptr);
  void *NewPtr = defaultAllocator().reallocate(Ptr, Bytes);
  trace::afterRealloc(Ptr, OldTok, NewPtr, Bytes);
  return NewPtr;
}

void *reallocarray(void *Ptr, size_t Num, size_t Size) {
  if (Size != 0 && Num > ~size_t{0} / Size) {
    errno = ENOMEM;
    return nullptr;
  }
  const std::uint64_t OldTok = trace::beforeRealloc(Ptr);
  void *NewPtr = defaultAllocator().reallocate(Ptr, Num * Size);
  trace::afterRealloc(Ptr, OldTok, NewPtr, Num * Size);
  return NewPtr;
}

void *aligned_alloc(size_t Alignment, size_t Bytes) {
  if (!isPowerOf2(Alignment)) {
    errno = EINVAL;
    return nullptr;
  }
  void *Ptr = defaultAllocator().allocateAligned(Alignment, Bytes);
  trace::onAlignedAlloc(Ptr, Alignment, Bytes);
  return Ptr;
}

int posix_memalign(void **Out, size_t Alignment, size_t Bytes) {
  if (!isPowerOf2(Alignment) || Alignment % sizeof(void *) != 0)
    return EINVAL;
  void *Ptr = defaultAllocator().allocateAligned(Alignment, Bytes);
  trace::onAlignedAlloc(Ptr, Alignment, Bytes);
  if (!Ptr)
    return ENOMEM;
  *Out = Ptr;
  return 0;
}

void *memalign(size_t Alignment, size_t Bytes) {
  if (!isPowerOf2(Alignment)) {
    errno = EINVAL;
    return nullptr;
  }
  void *Ptr = defaultAllocator().allocateAligned(Alignment, Bytes);
  trace::onAlignedAlloc(Ptr, Alignment, Bytes);
  return Ptr;
}

void *valloc(size_t Bytes) {
  void *Ptr = defaultAllocator().allocateAligned(OsPageSize, Bytes);
  trace::onAlignedAlloc(Ptr, OsPageSize, Bytes);
  return Ptr;
}

void *pvalloc(size_t Bytes) {
  const size_t Rounded = alignUp(Bytes, OsPageSize);
  void *Ptr = defaultAllocator().allocateAligned(OsPageSize, Rounded);
  trace::onAlignedAlloc(Ptr, OsPageSize, Rounded);
  return Ptr;
}

size_t malloc_usable_size(void *Ptr) {
  return Ptr ? defaultAllocator().usableSize(Ptr) : 0;
}

// glibc's malloc_trim(pad) releases free heap memory back to the system,
// keeping up to pad bytes; ours trims the retained superblock cache the
// same way (lock-free, madvise-based). Returns 1 when memory was
// released, matching glibc.
int malloc_trim(size_t Pad) { return lf_malloc_trim(Pad); }

// glibc's malloc_stats() prints arena statistics to stderr; ours prints
// the telemetry metrics JSON (counters require LFM_STATS=1 or LFM_TRACE=1
// in the environment at first allocation).
void malloc_stats(void) { defaultAllocator().metricsJson(stderr); }

// glibc's malloc_info() emits arena state as XML. We keep the call shape
// (Options must be 0, Stream non-null) but emit our own dialect, version
// "lfmalloc-1", carrying the heap-topology census: glibc's <arena>/<bin>
// vocabulary has no sensible mapping onto superblocks and size classes.
int malloc_info(int Options, FILE *Stream) {
  if (Options != 0 || Stream == nullptr) {
    errno = EINVAL;
    return -1;
  }
  profiling::TopologySnapshot Topo;
  defaultAllocator().topologySnapshot(Topo);
  std::fprintf(Stream, "<malloc version=\"lfmalloc-1\">\n");
  std::fprintf(Stream,
               "<heap superblocks=\"%llu\" cached=\"%llu\" blocks=\"%llu\" "
               "used=\"%llu\"/>\n",
               static_cast<unsigned long long>(Topo.TotalSuperblocks),
               static_cast<unsigned long long>(Topo.CachedSuperblocks),
               static_cast<unsigned long long>(Topo.TotalBlocks),
               static_cast<unsigned long long>(Topo.TotalUsedBlocks));
  std::fprintf(Stream,
               "<system type=\"current\" size=\"%llu\"/>\n"
               "<system type=\"max\" size=\"%llu\"/>\n",
               static_cast<unsigned long long>(Topo.Space.BytesInUse),
               static_cast<unsigned long long>(Topo.Space.PeakBytes));
  for (unsigned C = 0; C < Topo.ClassCount; ++C) {
    const profiling::ClassTopology &CT = Topo.Classes[C];
    if (CT.Superblocks == 0)
      continue;
    std::fprintf(Stream,
                 "<sizeclass size=\"%llu\" superblocks=\"%llu\" "
                 "blocks=\"%llu\" used=\"%llu\"/>\n",
                 static_cast<unsigned long long>(CT.BlockSize),
                 static_cast<unsigned long long>(CT.Superblocks),
                 static_cast<unsigned long long>(CT.TotalBlocks),
                 static_cast<unsigned long long>(CT.UsedBlocks));
  }
  std::fprintf(Stream, "</malloc>\n");
  return 0;
}

} // extern "C"

namespace {

// Whether the Prometheus latency/metrics exposition has data worth
// emitting at exit, decided once at init (no allocator queries from the
// atexit path).
bool DumpLatencyArmed = false;

// SIGUSR2 dump callbacks, registered with the telemetry::dumpSignal
// registrar (which owns the actual sigaction; anything else in the
// process — tests, embedders — can chain its own dump through the same
// registrar without clobbering ours). Each callback is async-signal-safe:
// raw-fd I/O over pre-cached state, or plain stores.

void dumpProfileCb() { lf_malloc_heap_profile_dump(); }

void dumpLatencyCb() { lf_malloc_latency_dump(); }

// One atomic store; a no-op unless a flight recording is active. The
// writer thread flushes on its next wakeup (~25 ms).
void traceFlushCb() { trace::requestAsyncFlush(); }

// Seqlock-publish a fresh frame so an inspector (or the core dump a
// crashing signal handler is about to produce) sees current numbers.
void shmPublishCb() {
  telemetry::ShmStats::publish(defaultAllocator().metricsSnapshot());
}

void leakReportAtExit() {
  lf_malloc_leak_report();
  // A leak report at exit is a post-mortem; the latency exposition is the
  // other half of that story, so emit it alongside when it has data.
  if (DumpLatencyArmed)
    lf_malloc_latency_dump();
}

// Final frame at orderly exit: whatever reads the segment (or the core)
// afterwards sees the process's last numbers, not the last exporter tick.
void shmPublishAtExit() { shmPublishCb(); }

// Shim initialization beyond the allocator itself: signal-dump handler,
// the atexit leak report, and the background stats exporter. This runs as
// an ELF constructor — after the allocator can serve (it self-initializes
// on first malloc, which libc may already have issued) but deliberately
// NOT inside defaultAllocator()'s static-init guard, where atexit's and
// pthread_create's own allocations could deadlock.
__attribute__((constructor)) void shimInit() {
  LFAllocator &Alloc = defaultAllocator();
  if (Alloc.profilerEnabled())
    telemetry::dumpSignalRegister(dumpProfileCb);
  // The Prometheus exposition carries both the latency and the contention
  // histogram families, so either recorder makes the SIGUSR2 dump (and the
  // exit-time exposition) worth emitting.
  DumpLatencyArmed = Alloc.latencyEnabled() || Alloc.contentionEnabled();
  if (DumpLatencyArmed)
    telemetry::dumpSignalRegister(dumpLatencyCb);
  // LFM_TRACE_RECORD=<path>: flight-record the whole process lifetime.
  // Routed through lf_malloc_ctl so the env path and the programmatic
  // path ("trace.start") are one code path; the atexit hook installed by
  // the recorder flushes and publishes the file at process exit.
  const char *TracePath = config::varRaw(config::Var::TraceRecord);
  if (TracePath != nullptr && *TracePath != '\0' &&
      lf_malloc_ctl("trace.start", nullptr, nullptr,
                    const_cast<char *>(TracePath),
                    std::strlen(TracePath) + 1) == 0)
    telemetry::dumpSignalRegister(traceFlushCb);
  // LFM_SHM_STATS: map the lfm-shmstats-v1 segment, publish the first
  // frame immediately (an inspector attaching before the first exporter
  // tick still sees valid numbers), keep it fresh on SIGUSR2, and stamp a
  // final frame at exit.
  const char *ShmSpec = config::varRaw(config::Var::ShmStats);
  if (ShmSpec != nullptr && *ShmSpec != '\0' &&
      lf_malloc_ctl("shmstats.open", nullptr, nullptr,
                    const_cast<char *>(ShmSpec),
                    std::strlen(ShmSpec) + 1) == 0) {
    shmPublishCb();
    telemetry::dumpSignalRegister(shmPublishCb);
    std::atexit(shmPublishAtExit);
  }
  if (config::varFlag(config::Var::LeakReport)) {
    detail::LeakReportRequested.store(true, std::memory_order_relaxed);
    std::atexit(leakReportAtExit);
  }
  std::uint64_t IntervalMs = 0;
  if (config::varU64(config::Var::StatsIntervalMs, IntervalMs) &&
      IntervalMs > 0)
    lf_malloc_ctl("exporter.start", nullptr, nullptr, &IntervalMs,
                  sizeof(IntervalMs));
}

} // namespace
