//===- shim/malloc_shim.cpp - LD_PRELOAD malloc replacement ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Drop-in replacement for the C allocation API, for use via LD_PRELOAD:
//
//   LD_PRELOAD=/path/to/liblfmalloc_preload.so some_program
//
// Every allocation in the process — including libc internals and C++
// operator new, which routes through malloc in libstdc++ — then goes
// through the completely lock-free allocator. This is safe to interpose
// from process start because the allocator is self-contained: its own
// implementation performs no heap allocation (only mmap), so there is no
// bootstrap recursion and no dlsym trampoline is needed.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"
#include "lfmalloc/LFMalloc.h"

#include <cerrno>
#include <cstddef>
#include <cstring>

using namespace lfm;

extern "C" {

void *malloc(size_t Bytes) { return defaultAllocator().allocate(Bytes); }

void free(void *Ptr) { defaultAllocator().deallocate(Ptr); }

void *calloc(size_t Num, size_t Size) {
  return defaultAllocator().allocateZeroed(Num, Size);
}

void *realloc(void *Ptr, size_t Bytes) {
  return defaultAllocator().reallocate(Ptr, Bytes);
}

void *reallocarray(void *Ptr, size_t Num, size_t Size) {
  if (Size != 0 && Num > ~size_t{0} / Size) {
    errno = ENOMEM;
    return nullptr;
  }
  return defaultAllocator().reallocate(Ptr, Num * Size);
}

void *aligned_alloc(size_t Alignment, size_t Bytes) {
  if (!isPowerOf2(Alignment)) {
    errno = EINVAL;
    return nullptr;
  }
  return defaultAllocator().allocateAligned(Alignment, Bytes);
}

int posix_memalign(void **Out, size_t Alignment, size_t Bytes) {
  if (!isPowerOf2(Alignment) || Alignment % sizeof(void *) != 0)
    return EINVAL;
  void *Ptr = defaultAllocator().allocateAligned(Alignment, Bytes);
  if (!Ptr)
    return ENOMEM;
  *Out = Ptr;
  return 0;
}

void *memalign(size_t Alignment, size_t Bytes) {
  if (!isPowerOf2(Alignment)) {
    errno = EINVAL;
    return nullptr;
  }
  return defaultAllocator().allocateAligned(Alignment, Bytes);
}

void *valloc(size_t Bytes) {
  return defaultAllocator().allocateAligned(OsPageSize, Bytes);
}

void *pvalloc(size_t Bytes) {
  return defaultAllocator().allocateAligned(
      OsPageSize, alignUp(Bytes, OsPageSize));
}

size_t malloc_usable_size(void *Ptr) {
  return Ptr ? defaultAllocator().usableSize(Ptr) : 0;
}

// glibc's malloc_stats() prints arena statistics to stderr; ours prints
// the telemetry metrics JSON (counters require LFM_STATS=1 or LFM_TRACE=1
// in the environment at first allocation).
void malloc_stats(void) { defaultAllocator().metricsJson(stderr); }

} // extern "C"
