//===- schedtest/Explorer.cpp - Seed sweep, replay, and shrinking ---------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "schedtest/Explorer.h"

#include "support/RuntimeConfig.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace lfm;
using namespace lfm::sched;

namespace {

/// Parses "seed=S,preempt=P,casfail=F" (any subset, any order) on top of
/// \p O. \returns false on malformed input.
bool parseReplay(const char *Raw, SchedOptions &O) {
  const char *P = Raw;
  while (*P) {
    const char *Eq = std::strchr(P, '=');
    if (!Eq)
      return false;
    char *End = nullptr;
    const unsigned long long V = std::strtoull(Eq + 1, &End, 0);
    if (End == Eq + 1)
      return false;
    const std::size_t KeyLen = static_cast<std::size_t>(Eq - P);
    if (KeyLen == 4 && std::strncmp(P, "seed", 4) == 0)
      O.Seed = V;
    else if (KeyLen == 7 && std::strncmp(P, "preempt", 7) == 0)
      O.MaxPreemptions = static_cast<unsigned>(V);
    else if (KeyLen == 7 && std::strncmp(P, "casfail", 7) == 0)
      O.CasFailPercent = static_cast<unsigned>(V);
    else
      return false;
    if (*End == '\0')
      break;
    if (*End != ',')
      return false;
    P = End + 1;
  }
  return true;
}

/// Runs \p RunOne and appends replay instructions to a failure message.
ScheduleOutcome runChecked(const ScheduleRunner &RunOne,
                           const SchedOptions &O) {
  return RunOne(O);
}

std::string describeFailure(const ScheduleOutcome &Out, const SchedOptions &O,
                            bool Reproducible) {
  std::string Msg = "schedule invariant violation: " + Out.Message;
  Msg += "\n  replay with: LFM_SCHED_REPLAY=\"" + replayString(O) + "\"";
  if (!Reproducible)
    Msg += "\n  WARNING: failure did NOT reproduce on re-run with the same "
           "options; suspect uninstrumented nondeterminism";
  return Msg;
}

} // namespace

namespace lfm {
namespace sched {

std::string replayString(const SchedOptions &O) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "seed=%llu,preempt=%u,casfail=%u",
                static_cast<unsigned long long>(O.Seed), O.MaxPreemptions,
                O.CasFailPercent);
  return Buf;
}

std::uint64_t envBaseSeed() {
  static const std::uint64_t Seed = [] {
    std::uint64_t V = 20260806;
    const bool FromEnv = config::varU64(config::Var::TestSeed, V);
    std::fprintf(stderr, "[lfm-test] LFM_TEST_SEED=%llu (%s)\n",
                 static_cast<unsigned long long>(V),
                 FromEnv ? "from environment" : "default");
    return V;
  }();
  return Seed;
}

std::uint64_t envNumSeeds(std::uint64_t Fallback) {
  std::uint64_t V = Fallback;
  config::varU64(config::Var::SchedSeeds, V);
  return V;
}

ExploreResult explore(const ExploreOptions &Opts,
                      const ScheduleRunner &RunOne) {
  ExploreResult Res;

  // Replay override: run exactly one configuration and report it.
  if (const char *Raw = config::varRaw(config::Var::SchedReplay)) {
    SchedOptions O = Opts.Proto;
    if (!parseReplay(Raw, O)) {
      Res.FoundFailure = true;
      Res.Message = std::string("malformed LFM_SCHED_REPLAY: \"") + Raw +
                    "\" (want \"seed=S,preempt=P,casfail=F\")";
      return Res;
    }
    std::fprintf(stderr, "[lfm-sched] replaying %s\n",
                 replayString(O).c_str());
    const ScheduleOutcome Out = runChecked(RunOne, O);
    Res.SchedulesRun = 1;
    if (!Out.Ok) {
      Res.FoundFailure = true;
      Res.Failing = O;
      Res.Message = describeFailure(Out, O, /*Reproducible=*/true);
    }
    return Res;
  }

  const std::uint64_t NumSeeds = envNumSeeds(Opts.NumSeeds);
  const std::vector<unsigned> &Fails =
      Opts.CasFailChoices.empty() ? std::vector<unsigned>{0}
                                  : Opts.CasFailChoices;

  SchedOptions FirstBad;
  ScheduleOutcome FirstOut;
  for (std::uint64_t I = 0; I < NumSeeds; ++I) {
    SchedOptions O = Opts.Proto;
    O.Seed = Opts.BaseSeed + I;
    O.MaxPreemptions = static_cast<unsigned>(I % (Opts.MaxPreemptionsCap + 1));
    O.CasFailPercent = Fails[I % Fails.size()];
    const ScheduleOutcome Out = runChecked(RunOne, O);
    ++Res.SchedulesRun;
    if (!Out.Ok) {
      Res.FoundFailure = true;
      FirstBad = O;
      FirstOut = Out;
      break;
    }
  }
  if (!Res.FoundFailure)
    return Res;

  // Determinism check: the same options must fail the same way.
  {
    const ScheduleOutcome Again = runChecked(RunOne, FirstBad);
    ++Res.SchedulesRun;
    Res.Reproducible = !Again.Ok;
  }

  // Greedy shrink while it still fails: CAS injection off first (a bug
  // that survives without forced failures is a real-schedule bug), then
  // preemptions downward.
  SchedOptions Min = FirstBad;
  if (Opts.Shrink && Res.Reproducible) {
    if (Min.CasFailPercent != 0) {
      SchedOptions Try = Min;
      Try.CasFailPercent = 0;
      const ScheduleOutcome Out = runChecked(RunOne, Try);
      ++Res.SchedulesRun;
      if (!Out.Ok) {
        Min = Try;
        FirstOut = Out;
      }
    }
    while (Min.MaxPreemptions > 0) {
      SchedOptions Try = Min;
      Try.MaxPreemptions = Min.MaxPreemptions - 1;
      const ScheduleOutcome Out = runChecked(RunOne, Try);
      ++Res.SchedulesRun;
      if (Out.Ok)
        break;
      Min = Try;
      FirstOut = Out;
    }
  }

  Res.Failing = Min;
  Res.Message = describeFailure(FirstOut, Min, Res.Reproducible);
  return Res;
}

} // namespace sched
} // namespace lfm
