//===- schedtest/Explorer.h - Seed sweep, replay, and shrinking --*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a schedule scenario across many seeds, varying the PCT
/// preemption count and the forced-CAS-failure rate, and turns the first
/// invariant violation into an actionable report:
///
///   1. the failure is re-run to confirm it replays deterministically,
///   2. the configuration is greedily shrunk (CAS injection off first,
///      then preemptions downward) while it still fails,
///   3. the report carries a one-line LFM_SCHED_REPLAY value that re-runs
///      exactly that schedule.
///
/// Environment knobs (all logged by the scenario tests on start):
///   LFM_TEST_SEED     base seed for the sweep (default 20260806)
///   LFM_SCHED_SEEDS   schedules per scenario (caps CI wall-clock)
///   LFM_SCHED_REPLAY  "seed=S,preempt=P,casfail=F" — skip the sweep and
///                     run only that configuration
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_SCHEDTEST_EXPLORER_H
#define LFMALLOC_SCHEDTEST_EXPLORER_H

#include "schedtest/ScheduleController.h"

#include <cstdint>
#include <functional>
#include <string>

namespace lfm {
namespace sched {

/// What one schedule of a scenario concluded. A scenario runs its bodies
/// under a ScheduleController built from the given options, checks its
/// oracle invariants, and reports — it must not abort on violation
/// (gtest EXPECT/ASSERT stay in the test, applied to the ExploreResult).
struct ScheduleOutcome {
  bool Ok = true;
  std::string Message; ///< First violated invariant, human-readable.
};

using ScheduleRunner = std::function<ScheduleOutcome(const SchedOptions &)>;

/// Sweep configuration.
struct ExploreOptions {
  /// First seed; schedule i uses BaseSeed + i. Tests default this from
  /// LFM_TEST_SEED via lfm::sched::envBaseSeed().
  std::uint64_t BaseSeed = 20260806;

  /// Schedules to run (overridden by LFM_SCHED_SEEDS when set).
  std::uint64_t NumSeeds = 400;

  /// Template for every schedule; Seed / MaxPreemptions / CasFailPercent
  /// are overwritten per schedule from the sweep's own derivation.
  SchedOptions Proto;

  /// Preemption counts are varied over [0, MaxPreemptionsCap].
  unsigned MaxPreemptionsCap = 4;

  /// CAS-failure percentages cycled through the sweep.
  std::vector<unsigned> CasFailChoices = {0, 10, 30};

  /// Greedily minimize a failing configuration before reporting.
  bool Shrink = true;
};

/// Result of a sweep (or a single replay).
struct ExploreResult {
  bool FoundFailure = false;
  bool Reproducible = true;  ///< Failing config failed again on re-run.
  SchedOptions Failing;      ///< Minimal failing configuration.
  std::string Message;       ///< Oracle message + replay instructions.
  std::uint64_t SchedulesRun = 0;
};

/// Runs the sweep (or the LFM_SCHED_REPLAY override) and shrinks the
/// first failure. \p RunOne executes one schedule per call and must be
/// deterministic in its options.
ExploreResult explore(const ExploreOptions &Opts,
                      const ScheduleRunner &RunOne);

/// \returns LFM_TEST_SEED if set, else the fixed default (20260806), so
/// every CI failure is locally replayable. Logs the value to stderr the
/// first time it is read.
std::uint64_t envBaseSeed();

/// \returns \p Fallback overridden by LFM_SCHED_SEEDS when set.
std::uint64_t envNumSeeds(std::uint64_t Fallback);

/// Formats "seed=S,preempt=P,casfail=F" for replay reporting.
std::string replayString(const SchedOptions &O);

} // namespace sched
} // namespace lfm

#endif // LFMALLOC_SCHEDTEST_EXPLORER_H
