//===- schedtest/ScheduleController.cpp - Deterministic scheduler ---------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "schedtest/ScheduleController.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>

using namespace lfm;
using namespace lfm::sched;

namespace lfm {
namespace sched {

thread_local ScheduleController *TlsController = nullptr;

#if LFM_SCHED_TEST
thread_local std::uint64_t TlsSiteVisits = 0;
#endif

const char *siteName(Site S) {
  switch (S) {
  case Site::ActiveReserve:
    return "ActiveReserve";
  case Site::ActivePop:
    return "ActivePop";
  case Site::UpdateActive:
    return "UpdateActive";
  case Site::PartialReserve:
    return "PartialReserve";
  case Site::PartialPop:
    return "PartialPop";
  case Site::NewSbInstall:
    return "NewSbInstall";
  case Site::FreePush:
    return "FreePush";
  case Site::HeapPartialSlot:
    return "HeapPartialSlot";
  case Site::DescPop:
    return "DescPop";
  case Site::DescPush:
    return "DescPush";
  case Site::TreiberPush:
    return "TreiberPush";
  case Site::TreiberPop:
    return "TreiberPop";
  case Site::MsqEnqueue:
    return "MsqEnqueue";
  case Site::MsqDequeue:
    return "MsqDequeue";
  case Site::HazardProtect:
    return "HazardProtect";
  case Site::SbAcquire:
    return "SbAcquire";
  case Site::SbRelease:
    return "SbRelease";
  case Site::SbTrim:
    return "SbTrim";
  case Site::TcacheRefill:
    return "TcacheRefill";
  case Site::TcacheFlush:
    return "TcacheFlush";
  case Site::TcacheSteal:
    return "TcacheSteal";
  case Site::BuddyAlloc:
    return "BuddyAlloc";
  case Site::BuddyCoalesce:
    return "BuddyCoalesce";
  case Site::NumSites:
    break;
  }
  return "?";
}

void schedYield(Site S) {
  if (ScheduleController *Ctl = TlsController)
    Ctl->yield(S);
}

bool schedShouldFailCas(Site S) {
  ScheduleController *Ctl = TlsController;
  return Ctl && Ctl->shouldFailCas(S);
}

} // namespace sched
} // namespace lfm

thread_local unsigned ScheduleController::TlsSelf = 0;

ScheduleController::ScheduleController(const SchedOptions &O)
    : Opts(O), RngState(O.Seed ^ 0x9e3779b97f4a7c15ULL),
      CasBudgetLeft(O.CasFailBudget) {
  const std::uint64_t Horizon =
      Opts.HorizonEstimate ? Opts.HorizonEstimate : 1;
  for (unsigned I = 0; I < Opts.MaxPreemptions; ++I)
    ChangePoints.push_back(1 + nextRand() % Horizon);
  std::sort(ChangePoints.begin(), ChangePoints.end());
}

ScheduleController::~ScheduleController() {
  if (!Joined && !Workers.empty())
    finish();
}

std::uint64_t ScheduleController::nextRand() { return splitMix64(RngState); }

void ScheduleController::spawn(std::vector<std::function<void()>> Bodies) {
  assert(Workers.empty() && "ScheduleController is one-shot");
  const unsigned N = static_cast<unsigned>(Bodies.size());
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Workers.push_back(std::make_unique<Worker>());

  // Seeded priority permutation (Fisher-Yates): higher runs first.
  std::vector<int> Prio(N);
  for (unsigned I = 0; I < N; ++I)
    Prio[I] = static_cast<int>(I);
  for (unsigned I = N; I > 1; --I)
    std::swap(Prio[I - 1], Prio[nextRand() % I]);
  for (unsigned I = 0; I < N; ++I)
    Workers[I]->Priority = Prio[I];

  for (unsigned I = 0; I < N; ++I) {
    // The body is moved into the thread; workerMain parks at the entry
    // gate before invoking it.
    Workers[I]->Thread =
        std::thread([this, I, Body = std::move(Bodies[I])] {
          workerMain(I, Body);
        });
  }

  // Wait until every worker stands at its gate, so the first grant (and
  // manual stepping) sees a fully-formed roster.
  std::unique_lock<std::mutex> Lock(M);
  MainCv.wait(Lock, [&] { return ReadyCount == N; });
}

void ScheduleController::workerMain(unsigned Self,
                                    const std::function<void()> &Body) {
  TlsController = this;
  TlsSelf = Self;
  Worker &W = *Workers[Self];
  {
    std::unique_lock<std::mutex> Lock(M);
    W.Reached = true;
    ++ReadyCount;
    MainCv.notify_all();
    W.Cv.wait(Lock, [&] {
      return W.Go || FreeRun.load(std::memory_order_relaxed);
    });
    W.Go = false;
    W.Phase = ThreadPhase::Running;
  }
  Body();
  {
    std::unique_lock<std::mutex> Lock(M);
    onDoneLocked(Lock, Self);
  }
  TlsController = nullptr;
}

void ScheduleController::grantLocked(unsigned Target) {
  Worker &W = *Workers[Target];
  W.Go = true;
  W.Cv.notify_one();
}

void ScheduleController::parkSelfLocked(std::unique_lock<std::mutex> &Lock,
                                        unsigned Self) {
  Worker &W = *Workers[Self];
  W.Phase = ThreadPhase::Parked;
  MainCv.notify_all();
  W.Cv.wait(Lock, [&] {
    return W.Go || FreeRun.load(std::memory_order_relaxed);
  });
  W.Go = false;
  W.Phase = ThreadPhase::Running;
}

int ScheduleController::pickNextLocked(unsigned Exclude) const {
  int Best = -1;
  for (unsigned I = 0; I < Workers.size(); ++I) {
    if (I == Exclude || !Workers[I]->Reached ||
        Workers[I]->Phase != ThreadPhase::Parked)
      continue;
    if (Best < 0 || Workers[I]->Priority > Workers[Best]->Priority)
      Best = static_cast<int>(I);
  }
  return Best;
}

void ScheduleController::onDoneLocked(std::unique_lock<std::mutex> &,
                                      unsigned Self) {
  Workers[Self]->Phase = ThreadPhase::Done;
  ++DoneCount;
  MainCv.notify_all();
  if (!Manual && !FreeRun.load(std::memory_order_relaxed)) {
    const int Next = pickNextLocked(Self);
    if (Next >= 0)
      grantLocked(static_cast<unsigned>(Next));
  }
}

std::uint64_t
ScheduleController::run(std::vector<std::function<void()>> Bodies) {
  Manual = false;
  const unsigned N = static_cast<unsigned>(Bodies.size());
  spawn(std::move(Bodies));
  {
    std::unique_lock<std::mutex> Lock(M);
    const int First = pickNextLocked(static_cast<unsigned>(-1));
    assert(First >= 0 && "no runnable thread at schedule start");
    grantLocked(static_cast<unsigned>(First));
    MainCv.wait(Lock, [&] { return DoneCount == N; });
  }
  for (auto &W : Workers)
    W->Thread.join();
  Joined = true;
  return steps();
}

void ScheduleController::start(std::vector<std::function<void()>> Bodies) {
  Manual = true;
  spawn(std::move(Bodies));
}

bool ScheduleController::step(unsigned Thread, std::uint64_t Points) {
  assert(Manual && "step() requires start()");
  std::unique_lock<std::mutex> Lock(M);
  Worker &W = *Workers[Thread];
  if (W.Phase == ThreadPhase::Done)
    return false;
  W.Budget = Points;
  grantLocked(Thread);
  MainCv.wait(Lock, [&] {
    return (!W.Go && W.Phase != ThreadPhase::Running) ||
           FreeRun.load(std::memory_order_relaxed);
  });
  return W.Phase != ThreadPhase::Done;
}

void ScheduleController::finish() {
  {
    std::unique_lock<std::mutex> Lock(M);
    FreeRun.store(true, std::memory_order_release);
    for (auto &W : Workers)
      W->Cv.notify_all();
  }
  for (auto &W : Workers)
    if (W->Thread.joinable())
      W->Thread.join();
  Joined = true;
}

void ScheduleController::yield(Site) {
  if (FreeRun.load(std::memory_order_acquire))
    return;
  const unsigned Self = TlsSelf;
  std::unique_lock<std::mutex> Lock(M);
  if (FreeRun.load(std::memory_order_relaxed))
    return;
  const std::uint64_t Step =
      Steps.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Step >= Opts.MaxSteps) {
    // Runaway schedule (livelock-shaped): abandon control, free-run to
    // completion so the scenario can report it.
    FreeRun.store(true, std::memory_order_release);
    for (auto &W : Workers)
      W->Cv.notify_all();
    MainCv.notify_all();
    return;
  }

  if (Manual) {
    Worker &W = *Workers[Self];
    assert(W.Budget > 0 && "running manual thread without budget");
    if (--W.Budget > 0)
      return;
    parkSelfLocked(Lock, Self);
    return;
  }

  // Auto mode: preempt only at the seeded PCT change points.
  if (NextChange >= ChangePoints.size() || Step < ChangePoints[NextChange])
    return;
  ++NextChange;
  Worker &W = *Workers[Self];
  W.Priority = LowWater--; // Demote below every other thread.
  const int Next = pickNextLocked(Self);
  if (Next < 0 || Workers[Next]->Priority <= W.Priority)
    return; // Nobody else runnable; keep going.
  grantLocked(static_cast<unsigned>(Next));
  parkSelfLocked(Lock, Self);
}

bool ScheduleController::shouldFailCas(Site S) {
  if (FreeRun.load(std::memory_order_acquire))
    return false;
  std::unique_lock<std::mutex> Lock(M);
  if (Opts.CasFailPercent == 0 || CasBudgetLeft == 0 ||
      !((Opts.CasFailSiteMask >> static_cast<unsigned>(S)) & 1))
    return false;
  if (nextRand() % 100 >= Opts.CasFailPercent)
    return false;
  --CasBudgetLeft;
  ForcedFails.fetch_add(1, std::memory_order_relaxed);
  return true;
}
