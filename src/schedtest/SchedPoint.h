//===- schedtest/SchedPoint.h - Schedule-exploration hook points -*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-time gate and hook macros for the deterministic
/// schedule-exploration harness (see docs/TESTING.md).
///
/// LFM_SCHED_TEST == 0 (the default): LFM_SCHED_POINT() compiles to
/// nothing and LFM_SCHED_CAS_FAIL() folds to `false` — the lock-free hot
/// paths are bit-identical to the uninstrumented code, mirroring the
/// LFM_TELEMETRY gate discipline.
///
/// LFM_SCHED_TEST == 1 (CMake: -DLFMALLOC_SCHED_TEST=ON): every marked
/// linearization window in the lock-free core becomes a cooperative yield
/// point. When the calling thread runs under a ScheduleController the
/// controller decides, from a seed, which thread proceeds next
/// (PCT-style bounded preemption) and whether a CAS site must report a
/// forced failure (exercising retry paths deterministically). Threads not
/// under a controller pay one predicted-false thread-local test per site.
///
/// Layering: this header depends on nothing so the lowest layers
/// (lockfree/, os/) can include it; the controller itself lives in
/// ScheduleController.h and links in via lfm_schedtest.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_SCHEDTEST_SCHEDPOINT_H
#define LFMALLOC_SCHEDTEST_SCHEDPOINT_H

#ifndef LFM_SCHED_TEST
#define LFM_SCHED_TEST 0
#endif

#if LFM_SCHED_TEST
#include <cstdint>
#endif

namespace lfm {
namespace sched {

/// Every instrumented linearization window in the library. One id per
/// razor-thin CAS race the paper's correctness argument rests on; the
/// controller filters forced CAS failures per site through
/// SchedOptions::CasFailSiteMask.
enum class Site : unsigned {
  // LFAllocator (paper Figs. 4 and 6).
  ActiveReserve,   ///< Fig. 4 MallocFromActive lines 1-6 credit CAS.
  ActivePop,       ///< Fig. 4 MallocFromActive lines 8-18 anchor pop CAS.
  UpdateActive,    ///< Fig. 4 UpdateActive credit-return anchor CAS.
  PartialReserve,  ///< Fig. 4 MallocFromPartial lines 4-10 reserve CAS.
  PartialPop,      ///< Fig. 4 MallocFromPartial lines 11-15 pop CAS.
  NewSbInstall,    ///< Fig. 4 MallocFromNewSB line 13 Active install CAS.
  FreePush,        ///< Fig. 6 free() lines 7-18 anchor push CAS.
  HeapPartialSlot, ///< Heap Partial-slot exchange/CAS (HeapGet/PutPartial).
  // DescriptorAllocator (paper Fig. 7).
  DescPop,  ///< DescAlloc hazard-protected freelist pop CAS.
  DescPush, ///< DescRetire freelist push CAS (via hazard reclamation).
  // Generic lock-free substrate.
  TreiberPush,   ///< TreiberStack::push head CAS.
  TreiberPop,    ///< TreiberStack::pop head CAS (the tagged ABA window).
  MsqEnqueue,    ///< MSQueue::enqueue link CAS.
  MsqDequeue,    ///< MSQueue::dequeue head CAS.
  HazardProtect, ///< HazardDomain::protect load-to-publish window.
  // SuperblockCache.
  SbAcquire, ///< SuperblockCache::acquire pop/mint window.
  SbRelease, ///< SuperblockCache::release push window.
  SbTrim,    ///< SuperblockCache::trimRetained drain window.
  // Thread-local magazine cache (ThreadCache.cpp / LFAllocator tcache).
  TcacheRefill, ///< Batch refill reserve/pop anchor CAS windows.
  TcacheFlush,  ///< Batch flush anchor push + depot push CAS windows.
  TcacheSteal,  ///< Depot steal-all exchange + leftover re-push window.
  // Buddy large-object backend (BuddyBackend.cpp).
  BuddyAlloc,    ///< Status-tree claim CAS + ancestor up-mark window.
  BuddyCoalesce, ///< Trim-walk claim CAS before a free-block decommit.
  NumSites
};

/// \returns a stable human-readable name for \p S (for failure reports).
const char *siteName(Site S);

class ScheduleController;

/// Controller governing the calling thread, or null. Set by
/// ScheduleController for its worker threads only; every other thread in
/// the process sees null and passes straight through the hooks.
extern thread_local ScheduleController *TlsController;

/// Out-of-line slow paths, entered only with a controller attached.
void schedYield(Site S);
bool schedShouldFailCas(Site S);

#if LFM_SCHED_TEST
/// Per-thread count of instrumented-site visits (every LFM_SCHED_POINT /
/// LFM_SCHED_CAS_FAIL evaluation, controlled or not). Every site marks a
/// lock-prefixed RMW's linearization window, so this doubles as a
/// deterministic proxy for "lock-prefixed instructions executed" that
/// bench_fastpath reads to prove the magazine-hit path performs zero —
/// robust to containers where hardware perf counters are unavailable.
extern thread_local std::uint64_t TlsSiteVisits;
#endif

} // namespace sched
} // namespace lfm

#if LFM_SCHED_TEST

/// A point where the scheduler may preempt the calling thread. Place one
/// inside every instrumented CAS retry loop so the controller can
/// interleave other threads between the read of the expected value and
/// the CAS attempt.
#define LFM_SCHED_POINT(SiteId)                                              \
  do {                                                                       \
    ++::lfm::sched::TlsSiteVisits;                                           \
    if (__builtin_expect(::lfm::sched::TlsController != nullptr, 0))         \
      ::lfm::sched::schedYield(::lfm::sched::Site::SiteId);                  \
  } while (0)

/// Forced-failure cue for a CAS site: evaluates to true when the
/// controller injects a failure, in which case the caller must behave
/// exactly as if the CAS lost a race (skip it and retry the loop).
/// Use as `while (LFM_SCHED_CAS_FAIL(Site) || !word.compareExchange(...))`.
#define LFM_SCHED_CAS_FAIL(SiteId)                                           \
  (++::lfm::sched::TlsSiteVisits,                                            \
   __builtin_expect(::lfm::sched::TlsController != nullptr, 0) &&            \
   ::lfm::sched::schedShouldFailCas(::lfm::sched::Site::SiteId))

#else

#define LFM_SCHED_POINT(SiteId)                                              \
  do {                                                                       \
  } while (0)
#define LFM_SCHED_CAS_FAIL(SiteId) false

#endif // LFM_SCHED_TEST

#endif // LFMALLOC_SCHEDTEST_SCHEDPOINT_H
