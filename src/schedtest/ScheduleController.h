//===- schedtest/ScheduleController.h - Deterministic scheduler --*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A relacy-lite cooperative scheduler for deterministic exploration of
/// lock-free interleavings. N real OS threads run test bodies, but at most
/// ONE executes at any instant: every LFM_SCHED_POINT() in the
/// instrumented code (SchedPoint.h) is a yield to the controller, which
/// decides from a seed who runs next.
///
/// Scheduling policy (auto mode) is PCT-style [Burckhardt et al., ASPLOS
/// 2010]: threads get random priorities, the highest-priority runnable
/// thread runs, and at d seeded change points the running thread is
/// demoted below everyone — so a schedule with a bug of preemption depth
/// <= d is found with probability >= 1/(n * k^(d-1)) per seed. Manual mode
/// turns the calling test into the scheduler: step(i, n) runs thread i
/// for exactly n schedule points, letting regression tests script the
/// precise interleaving of a known-dangerous window.
///
/// CAS-failure injection: per-site, seeded, budgeted forced failures make
/// the instrumented CAS loops take their retry paths even in schedules
/// where no other thread intervenes (the injectMapFailuresAfter cue
/// pattern from PageAllocator, applied to CAS sites).
///
/// Because only one controlled thread runs at a time, scenario bodies may
/// share plain (non-atomic) oracle state between schedule points — but
/// guard it with a std::mutex anyway: after a runaway schedule the
/// controller releases all threads to free-run (see MaxSteps).
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_SCHEDTEST_SCHEDULECONTROLLER_H
#define LFMALLOC_SCHEDTEST_SCHEDULECONTROLLER_H

#include "schedtest/SchedPoint.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lfm {
namespace sched {

/// One schedule's configuration. Fully determines the interleaving for a
/// fixed set of bodies (same seed + same options => same schedule).
struct SchedOptions {
  /// Master seed for priorities, change points and CAS-failure draws.
  std::uint64_t Seed = 1;

  /// PCT preemption bound: number of seeded priority-change points. 0
  /// runs each thread to completion in priority order.
  unsigned MaxPreemptions = 2;

  /// Probability (percent, 0-100) that an eligible CAS site is forced to
  /// report failure.
  unsigned CasFailPercent = 0;

  /// Cap on forced CAS failures per schedule, so lock-free loops cannot
  /// be starved forever by the injector.
  std::uint64_t CasFailBudget = 64;

  /// Bitmask over Site ids eligible for forced failure (bit N = Site N).
  std::uint64_t CasFailSiteMask = ~std::uint64_t{0};

  /// Schedule-length estimate the PCT change points are sampled from.
  std::uint64_t HorizonEstimate = 2048;

  /// Runaway guard: a schedule exceeding this many points is aborted by
  /// releasing every thread to free-run (runawayDetected() turns true).
  /// With finite bodies this indicates a livelock-shaped bug.
  std::uint64_t MaxSteps = std::uint64_t{1} << 22;
};

/// Runs a fixed set of thread bodies under seeded deterministic
/// interleaving. One-shot: construct, run() (or start()/step()/finish()),
/// destroy.
class ScheduleController {
public:
  explicit ScheduleController(const SchedOptions &Opts);
  ~ScheduleController();
  ScheduleController(const ScheduleController &) = delete;
  ScheduleController &operator=(const ScheduleController &) = delete;

  /// Auto mode: runs every body to completion under the seeded PCT
  /// policy. \returns the number of schedule points executed.
  std::uint64_t run(std::vector<std::function<void()>> Bodies);

  /// Manual mode: spawns the bodies and parks them all at their entry
  /// gates without running any. Drive with step(); end with finish().
  void start(std::vector<std::function<void()>> Bodies);

  /// Manual mode: lets thread \p Thread execute until it has passed
  /// \p Points further schedule points (it stops ON the point, before the
  /// instruction the point guards) or its body returns. \returns false
  /// once the body has returned.
  bool step(unsigned Thread, std::uint64_t Points = 1);

  /// Manual mode: releases every thread to free-run and joins them.
  /// Also called by the destructor if the test forgets.
  void finish();

  /// \returns schedule points executed so far.
  std::uint64_t steps() const {
    return Steps.load(std::memory_order_relaxed);
  }

  /// \returns forced CAS failures injected so far.
  std::uint64_t forcedFailures() const {
    return ForcedFails.load(std::memory_order_relaxed);
  }

  /// \returns true when the MaxSteps guard fired and the schedule was
  /// abandoned to free-running threads.
  bool runawayDetected() const {
    return FreeRun.load(std::memory_order_acquire);
  }

  /// Controller of the calling thread, or null (the hook macros test the
  /// thread-local directly; this is for scenario bodies).
  static ScheduleController *current() { return TlsController; }

  /// Yield from the calling controlled thread (the out-of-line target of
  /// LFM_SCHED_POINT; scenario bodies may also call it directly to add
  /// schedule points of their own).
  void yield(Site S);

  /// Forced-failure draw for a CAS site (target of LFM_SCHED_CAS_FAIL).
  bool shouldFailCas(Site S);

private:
  enum class ThreadPhase : std::uint8_t {
    Parked,  ///< Waiting at the gate or a schedule point.
    Running, ///< The one thread currently executing.
    Done,    ///< Body returned.
  };

  struct Worker {
    std::thread Thread;
    std::condition_variable Cv;
    ThreadPhase Phase = ThreadPhase::Parked;
    bool Go = false;             ///< Grant flag (guards against spurious wakeups).
    bool Reached = false;        ///< Arrived at its entry gate.
    int Priority = 0;            ///< Higher runs first (auto mode).
    std::uint64_t Budget = 0;    ///< Remaining points before parking (manual).
  };

  void spawn(std::vector<std::function<void()>> Bodies);
  void workerMain(unsigned Self, const std::function<void()> &Body);
  void grantLocked(unsigned Target);
  void parkSelfLocked(std::unique_lock<std::mutex> &Lock, unsigned Self);
  int pickNextLocked(unsigned Exclude) const; ///< -1 if none parked.
  void onDoneLocked(std::unique_lock<std::mutex> &Lock, unsigned Self);
  std::uint64_t nextRand();

  const SchedOptions Opts;

  mutable std::mutex M;
  std::condition_variable MainCv;
  std::vector<std::unique_ptr<Worker>> Workers;
  bool Manual = false;
  unsigned ReadyCount = 0;
  unsigned DoneCount = 0;
  int LowWater = -1; ///< Ever-decreasing priority for demoted threads.
  std::uint64_t RngState;
  std::vector<std::uint64_t> ChangePoints; ///< Sorted PCT change points.
  std::size_t NextChange = 0;
  std::uint64_t CasBudgetLeft = 0;

  std::atomic<std::uint64_t> Steps{0};
  std::atomic<std::uint64_t> ForcedFails{0};
  std::atomic<bool> FreeRun{false};
  bool Joined = false;

  /// Worker-thread context, set once per worker in workerMain.
  static thread_local unsigned TlsSelf;
};

} // namespace sched
} // namespace lfm

#endif // LFMALLOC_SCHEDTEST_SCHEDULECONTROLLER_H
