//===- telemetry/Counters.h - Sharded lock-free counters ---------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocator's operation counters, sharded to defeat false sharing.
///
/// The pre-telemetry design kept one atomic per counter in a single block:
/// under 8+ threads every malloc bounced the same cache lines between
/// cores, perturbing exactly the hot paths the counters are meant to
/// measure. Here each thread increments a shard selected by its dense
/// \c threadIndex(); shards are cache-line aligned so threads (mod
/// ShardCount) never share a line. Increments are relaxed fetch-adds —
/// always lock-free and async-signal-safe — and reads aggregate across
/// shards, trading read cost (rare) for increment cost (hot).
///
/// This is the same per-thread/per-shard statistics discipline scalable
/// allocators like scalloc and NBBS use to attribute contention losses to
/// specific CAS loops without distorting them.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TELEMETRY_COUNTERS_H
#define LFMALLOC_TELEMETRY_COUNTERS_H

#include "support/Platform.h"
#include "support/ThreadRegistry.h"

#include <atomic>
#include <cstdint>

namespace lfm {
namespace telemetry {

/// Every counter the allocator maintains. The first eight are the legacy
/// OpStats set; the rest attribute time and space to specific mechanisms
/// of the paper's algorithm (see docs/OBSERVABILITY.md for the glossary).
enum class Counter : unsigned {
  // Core operation counts (the legacy OpStats set).
  Mallocs,      ///< allocate() calls (every path).
  Frees,        ///< deallocate() calls (every path, nulls excluded).
  FromActive,   ///< Mallocs served by the Active fast path (Fig. 4).
  FromPartial,  ///< Mallocs served from a PARTIAL superblock.
  FromNewSb,    ///< Mallocs that installed a fresh superblock.
  LargeMallocs, ///< Mallocs taking the large (direct mmap) path.
  LargeFrees,   ///< Frees of large blocks.
  SbFreed,      ///< Superblocks whose last free made them EMPTY.

  // CAS retry attribution (a "retry" is a failed CAS attempt; zero under
  // no contention).
  ActiveReserveRetries, ///< Fig. 4 MallocFromActive credit-reservation CAS.
  ActivePopRetries,     ///< Fig. 4 MallocFromActive block-pop anchor CAS.
  PartialReserveRetries,///< Fig. 4 MallocFromPartial reservation anchor CAS.
  PartialPopRetries,    ///< Fig. 4 MallocFromPartial block-pop anchor CAS.
  FreePushRetries,      ///< Fig. 6 free() block-push anchor CAS.
  UpdateActiveRetries,  ///< Fig. 4 UpdateActive credit-return anchor CAS.

  // Path events.
  ActiveNullMisses,   ///< Active-credit reservation failures: reservation
                      ///< found no active superblock installed.
  UpdateActiveReturns,///< UpdateActive lost the install race; credits
                      ///< returned to the anchor, superblock to PARTIAL.
  NewSbInstallRaces,  ///< MallocFromNewSB lost the Active install race and
                      ///< deallocated its fresh superblock.

  // Partial-list traffic (the class-wide shared list, §3.2.6).
  PartialListPuts, ///< Descriptors demoted into the class-wide list.
  PartialListGets, ///< Descriptors taken from the class-wide list.

  // Descriptor lifecycle (Fig. 7).
  DescAllocs,   ///< DescAlloc pops (or minted-batch firsts).
  DescRetires,  ///< DescRetire calls (deferred through hazard domain).
  DescChunkMaps,///< Descriptor superblocks (DESCSBSIZE) mapped from the OS.

  // Superblock / hyperblock supply (§3.2.5).
  SbAcquires,     ///< Superblocks handed out by the cache.
  SbReleases,     ///< Superblocks returned to the cache (or OS).
  HyperblockMaps, ///< Hyperblocks mapped from the OS.
  HyperblockUnmaps, ///< Hyperblocks returned to the OS (trim).

  // Memory-return traffic (retention watermark, decay, explicit trim).
  SbDecommits,      ///< Cached superblocks whose tail pages were returned
                    ///< to the OS (madvise) over the retention watermark.
  SbRecommits,      ///< Decommitted superblocks handed back out (pages
                    ///< refault zero-filled on first touch).
  HyperblockParks,  ///< Fully-free hyperblocks decommitted and parked.
  HyperblockUnparks,///< Parked hyperblocks pressed back into service.
  TrimRuns,         ///< trimRetained() passes that won the trim slot.
  OomRescues,       ///< Map failures recovered by trimming retained cache.

  // Telemetry self-accounting.
  TraceDrops, ///< Trace events dropped (no ring: thread index too high or
              ///< ring allocation failed).
  LatencySamples, ///< Latency samples recorded (sampled ops + rare paths).
  ExporterAllocs, ///< Watchdog: latency samples recorded while on the
                  ///< background stats exporter thread — nonzero means the
                  ///< exporter allocated through the instrumented path.

  // Thread-local magazine cache (ThreadCache.h). The two hit counters are
  // filled at snapshot time from plain per-cache cells (the hit path must
  // stay RMW-free, so it cannot touch this sharded set); the rest are
  // normal slow-path counters.
  TcacheHitMallocs, ///< Mallocs served from a magazine (plain-store path).
  TcacheHitFrees,   ///< Frees absorbed by a magazine (plain-store path).
  TcacheRefills,    ///< Magazine refill passes (depot steal + batch pops).
  TcacheRefillBlocks, ///< Blocks brought into magazines by refills.
  TcacheFlushes,    ///< Magazine flush passes (overflow, drain, trim).
  TcacheFlushBlocks, ///< Blocks pushed out of magazines by flushes.
  TcacheSteals,     ///< Depot steal-all exchanges that found blocks.
  TcacheStealBlocks, ///< Blocks obtained from the shared depot.
  TcacheAdopts,     ///< Parked caches adopted by new threads.
  TcacheExitDrains, ///< Thread-exit drains through the pthread-key hook.

  // Buddy large-object backend (BuddyBackend.cpp). The backend keeps its
  // own always-on relaxed atomics (it must work in every build config and
  // its object file must stay telemetry-symbol-free); these slots are
  // filled from that set at snapshot time, like the tcache hit counters.
  BuddyAllocs,       ///< Large blocks served from buddy spans.
  BuddyFrees,        ///< Large blocks returned to buddy spans.
  BuddySplits,       ///< Free blocks first carved into by an allocation.
  BuddyCoalesces,    ///< Blocks whose subtree drained back to fully free.
  BuddyOsFallbacks,  ///< Large requests the buddy punted to a direct OS map.
  BuddyRollbacks,    ///< Claims undone after losing to an enclosing block.
  BuddyDecommits,    ///< Free-block decommits (watermark or trim).
  BuddySpanReserves, ///< Address-space spans reserved.

  CounterCount
};

inline constexpr unsigned NumCounters =
    static_cast<unsigned>(Counter::CounterCount);

/// \returns the stable snake_case name exported in metrics JSON.
const char *counterName(Counter C);

/// Cache-line-padded counter shards. Increment: one relaxed fetch-add on
/// the calling thread's shard. Read: sum over shards (racy snapshot, exact
/// once writers are quiescent).
class CounterSet {
public:
  /// Shards; power of two. 16 × 64 B of padding keeps the set compact
  /// while separating up to 16 concurrent incrementers.
  static constexpr unsigned ShardCount = 16;

  CounterSet() = default;
  CounterSet(const CounterSet &) = delete;
  CounterSet &operator=(const CounterSet &) = delete;

  /// Adds \p N to \p C on this thread's shard. Lock-free, relaxed,
  /// async-signal-safe.
  void add(Counter C, std::uint64_t N = 1) {
    Shards[threadIndex() & (ShardCount - 1)]
        .Vals[static_cast<unsigned>(C)]
        .fetch_add(N, std::memory_order_relaxed);
  }

  /// \returns the aggregated total of \p C across all shards.
  std::uint64_t total(Counter C) const {
    std::uint64_t Sum = 0;
    for (const Shard &S : Shards)
      Sum += S.Vals[static_cast<unsigned>(C)].load(std::memory_order_relaxed);
    return Sum;
  }

  /// Aggregates every counter into \p Out (indexed by Counter).
  void snapshot(std::uint64_t (&Out)[NumCounters]) const {
    for (unsigned C = 0; C < NumCounters; ++C)
      Out[C] = 0;
    for (const Shard &S : Shards)
      for (unsigned C = 0; C < NumCounters; ++C)
        Out[C] += S.Vals[C].load(std::memory_order_relaxed);
  }

private:
  struct alignas(CacheLineSize) Shard {
    std::atomic<std::uint64_t> Vals[NumCounters] = {};
  };

  Shard Shards[ShardCount];
};

} // namespace telemetry
} // namespace lfm

#endif // LFMALLOC_TELEMETRY_COUNTERS_H
