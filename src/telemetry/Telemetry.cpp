//===- telemetry/Telemetry.cpp - Allocator observability facade -----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Telemetry.h"

#include "profiling/FdWriter.h"
#include "support/Timing.h"
#include "telemetry/JsonWriter.h"
#include "telemetry/MetricsSnapshot.h"

#include <algorithm>
#include <new>

using namespace lfm;
using namespace lfm::telemetry;

const char *lfm::telemetry::counterName(Counter C) {
  switch (C) {
  case Counter::Mallocs:
    return "mallocs";
  case Counter::Frees:
    return "frees";
  case Counter::FromActive:
    return "from_active";
  case Counter::FromPartial:
    return "from_partial";
  case Counter::FromNewSb:
    return "from_new_sb";
  case Counter::LargeMallocs:
    return "large_mallocs";
  case Counter::LargeFrees:
    return "large_frees";
  case Counter::SbFreed:
    return "sb_freed";
  case Counter::ActiveReserveRetries:
    return "active_reserve_retries";
  case Counter::ActivePopRetries:
    return "active_pop_retries";
  case Counter::PartialReserveRetries:
    return "partial_reserve_retries";
  case Counter::PartialPopRetries:
    return "partial_pop_retries";
  case Counter::FreePushRetries:
    return "free_push_retries";
  case Counter::UpdateActiveRetries:
    return "update_active_retries";
  case Counter::ActiveNullMisses:
    return "active_null_misses";
  case Counter::UpdateActiveReturns:
    return "update_active_returns";
  case Counter::NewSbInstallRaces:
    return "new_sb_install_races";
  case Counter::PartialListPuts:
    return "partial_list_puts";
  case Counter::PartialListGets:
    return "partial_list_gets";
  case Counter::DescAllocs:
    return "desc_allocs";
  case Counter::DescRetires:
    return "desc_retires";
  case Counter::DescChunkMaps:
    return "desc_chunk_maps";
  case Counter::SbAcquires:
    return "sb_acquires";
  case Counter::SbReleases:
    return "sb_releases";
  case Counter::HyperblockMaps:
    return "hyperblock_maps";
  case Counter::HyperblockUnmaps:
    return "hyperblock_unmaps";
  case Counter::SbDecommits:
    return "sb_decommits";
  case Counter::SbRecommits:
    return "sb_recommits";
  case Counter::HyperblockParks:
    return "hyperblock_parks";
  case Counter::HyperblockUnparks:
    return "hyperblock_unparks";
  case Counter::TrimRuns:
    return "trim_runs";
  case Counter::OomRescues:
    return "oom_rescues";
  case Counter::TraceDrops:
    return "trace_drops";
  case Counter::LatencySamples:
    return "latency_samples";
  case Counter::ExporterAllocs:
    return "exporter_allocs";
  case Counter::TcacheHitMallocs:
    return "tcache_hit_mallocs";
  case Counter::TcacheHitFrees:
    return "tcache_hit_frees";
  case Counter::TcacheRefills:
    return "tcache_refills";
  case Counter::TcacheRefillBlocks:
    return "tcache_refill_blocks";
  case Counter::TcacheFlushes:
    return "tcache_flushes";
  case Counter::TcacheFlushBlocks:
    return "tcache_flush_blocks";
  case Counter::TcacheSteals:
    return "tcache_steals";
  case Counter::TcacheStealBlocks:
    return "tcache_steal_blocks";
  case Counter::TcacheAdopts:
    return "tcache_adopts";
  case Counter::TcacheExitDrains:
    return "tcache_exit_drains";
  case Counter::BuddyAllocs:
    return "buddy_allocs";
  case Counter::BuddyFrees:
    return "buddy_frees";
  case Counter::BuddySplits:
    return "buddy_splits";
  case Counter::BuddyCoalesces:
    return "buddy_coalesces";
  case Counter::BuddyOsFallbacks:
    return "buddy_os_fallbacks";
  case Counter::BuddyRollbacks:
    return "buddy_rollbacks";
  case Counter::BuddyDecommits:
    return "buddy_decommits";
  case Counter::BuddySpanReserves:
    return "buddy_span_reserves";
  case Counter::CounterCount:
    break;
  }
  return "unknown";
}

const char *lfm::telemetry::eventTypeName(EventType T) {
  switch (T) {
  case EventType::SbNew:
    return "sb_new";
  case EventType::SbActive:
    return "sb_active";
  case EventType::SbPartial:
    return "sb_partial";
  case EventType::SbFull:
    return "sb_full";
  case EventType::SbEmpty:
    return "sb_empty";
  case EventType::DescRetired:
    return "desc_retired";
  case EventType::OsMap:
    return "os_map";
  case EventType::OsUnmap:
    return "os_unmap";
  case EventType::OsDecommit:
    return "os_decommit";
  case EventType::Trim:
    return "trim";
  case EventType::None:
  case EventType::EventTypeCount:
    break;
  }
  return "unknown";
}

namespace {

std::uint32_t roundUpPow2(std::uint32_t V) {
  if (V < 2)
    return 2;
  std::uint32_t P = 1;
  while (P < V)
    P <<= 1;
  return P;
}

} // namespace

Telemetry::Telemetry(const Options &Opts)
    : TraceOn(Opts.Trace),
      RingCapacity(roundUpPow2(Opts.TraceEventsPerThread))
#if LFM_TELEMETRY
      ,
      Lat(LatencyRecorder::Options{Opts.LatencySamplePeriod, Opts.LatencySeed}),
      Cont(ContentionRecorder::Options{
          Opts.ContentionSamplePeriod, Opts.ContentionSeed,
          static_cast<std::uint32_t>(
              std::min<std::uint64_t>(Opts.ContentionHeatCapacity, 1u << 20)),
          Opts.ContentionWatchdog, Opts.ContentionStallMs,
          Opts.ContentionStormRetries})
#endif
{
}

Telemetry::~Telemetry() {
  for (std::atomic<TraceRing *> &SlotRef : Rings) {
    TraceRing *Ring = SlotRef.load(std::memory_order_acquire);
    if (Ring != nullptr) {
      Ring->~TraceRing();
      RingPages.unmap(Ring, TraceRing::bytesFor(Ring->capacity()));
    }
  }
}

TraceRing *Telemetry::myRing() {
  const std::uint32_t Tid = threadIndex();
  if (LFM_UNLIKELY(Tid >= MaxTraceThreads))
    return nullptr;
  TraceRing *Ring = Rings[Tid].load(std::memory_order_acquire);
  if (LFM_LIKELY(Ring != nullptr))
    return Ring;
  // First event on this thread: map and publish its ring. The slot is
  // written only by this thread, so a plain release store suffices.
  void *Mem = RingPages.map(TraceRing::bytesFor(RingCapacity));
  if (Mem == nullptr)
    return nullptr;
  Ring = new (Mem) TraceRing(Tid, RingCapacity);
  Rings[Tid].store(Ring, std::memory_order_release);
  return Ring;
}

void Telemetry::trace(EventType Type, std::uint64_t Arg0,
                      std::uint64_t Arg1) {
  if (!TraceOn)
    return;
  TraceRing *Ring = myRing();
  if (LFM_UNLIKELY(Ring == nullptr)) {
    Counters.add(Counter::TraceDrops);
    return;
  }
  Ring->emit(Type, monotonicNanos(), Arg0, Arg1);
}

std::uint64_t Telemetry::traceEventsEmitted() const {
  std::uint64_t Sum = 0;
  for (const std::atomic<TraceRing *> &SlotRef : Rings)
    if (const TraceRing *Ring = SlotRef.load(std::memory_order_acquire))
      Sum += Ring->emitted();
  return Sum;
}

std::uint64_t Telemetry::traceEventsOverwritten() const {
  std::uint64_t Sum = 0;
  for (const std::atomic<TraceRing *> &SlotRef : Rings)
    if (const TraceRing *Ring = SlotRef.load(std::memory_order_acquire))
      Sum += Ring->overwritten();
  return Sum;
}

void Telemetry::writeTraceJson(std::FILE *Out) const {
  // Gather the stable events of every ring into one scratch buffer, mapped
  // from the telemetry's own page source so the export path never calls
  // the allocator it is describing.
  std::uint64_t MaxEvents = 0;
  for (const std::atomic<TraceRing *> &SlotRef : Rings)
    if (SlotRef.load(std::memory_order_acquire) != nullptr)
      MaxEvents += RingCapacity;

  TraceEvent *Events = nullptr;
  const std::size_t ScratchBytes = MaxEvents * sizeof(TraceEvent);
  std::uint64_t N = 0;
  if (MaxEvents > 0) {
    // const_cast: ring storage is mutable bookkeeping; the logical state
    // of the Telemetry is unchanged by exporting.
    auto &Pages = const_cast<PageAllocator &>(RingPages);
    Events = static_cast<TraceEvent *>(Pages.map(ScratchBytes));
    if (Events != nullptr) {
      for (const std::atomic<TraceRing *> &SlotRef : Rings)
        if (const TraceRing *Ring = SlotRef.load(std::memory_order_acquire))
          N += Ring->drain(Events + N,
                           static_cast<std::uint32_t>(MaxEvents - N));
      std::sort(Events, Events + N,
                [](const TraceEvent &A, const TraceEvent &B) {
                  return A.TimestampNs < B.TimestampNs;
                });
    }
  }

  JsonWriter W(Out);
  W.beginObject();
  W.field("displayTimeUnit", "ns");
  W.key("traceEvents");
  W.beginArray();
  for (std::uint64_t I = 0; I < N; ++I) {
    const TraceEvent &E = Events[I];
    W.beginObject();
    W.field("name", eventTypeName(E.Type));
    W.field("cat", "lfm");
    W.field("ph", "i"); // Instant event.
    W.field("s", "t");  // Thread-scoped.
    W.key("ts");        // Chrome expects microseconds.
    W.value(static_cast<double>(E.TimestampNs) / 1000.0);
    W.field("pid", std::uint64_t{1});
    W.field("tid", std::uint64_t{E.Tid});
    W.key("args");
    W.beginObject();
    W.field("arg0", E.Arg0);
    W.field("arg1", E.Arg1);
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.endObject();
  std::fputc('\n', Out);

  if (Events != nullptr) {
    auto &Pages = const_cast<PageAllocator &>(RingPages);
    Pages.unmap(Events, ScratchBytes);
  }
}

namespace {

/// JsonWriter's comma/structure discipline over an async-signal-safe
/// FdWriter, so the exporter and signal paths can emit the same metrics
/// document without stdio or heap allocation. Strings here are fixed
/// identifiers from our own tables — no escaping required.
class FdJsonWriter {
public:
  explicit FdJsonWriter(int Fd) : W(Fd) {}

  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  void key(const char *K) {
    comma();
    string(K);
    W.ch(':');
    JustWroteKey = true;
  }

  void value(std::uint64_t V) {
    comma();
    W.dec(V);
  }
  void value(std::int64_t V) {
    comma();
    if (V < 0) {
      W.ch('-');
      W.dec(static_cast<std::uint64_t>(-(V + 1)) + 1);
    } else {
      W.dec(static_cast<std::uint64_t>(V));
    }
  }
  void value(bool V) {
    comma();
    W.str(V ? "true" : "false");
  }
  void value(const char *V) {
    comma();
    string(V);
  }

  void field(const char *K, std::uint64_t V) {
    key(K);
    value(V);
  }
  void field(const char *K, std::int64_t V) {
    key(K);
    value(V);
  }
  void field(const char *K, bool V) {
    key(K);
    value(V);
  }
  void field(const char *K, const char *V) {
    key(K);
    value(V);
  }

  void newline() { W.ch('\n'); }

private:
  void open(char C) {
    comma();
    W.ch(C);
    NeedComma = false;
  }
  void close(char C) {
    W.ch(C);
    NeedComma = true;
    JustWroteKey = false;
  }
  void comma() {
    if (JustWroteKey) {
      JustWroteKey = false;
      return;
    }
    if (NeedComma)
      W.ch(',');
    NeedComma = true;
  }
  void string(const char *S) {
    W.ch('"');
    W.str(S);
    W.ch('"');
  }

  profiling::FdWriter W;
  bool NeedComma = false;
  bool JustWroteKey = false;
};

/// The one definition of the metrics document, emitted through either
/// writer so the stdio and fd forms can never drift apart.
template <class Writer>
void emitMetricsDoc(Writer &W, const MetricsSnapshot &Snap) {
  W.beginObject();
  W.field("schema", "lfm-metrics-v5");

  W.key("config");
  W.beginObject();
  W.field("heaps", Snap.Heaps);
  W.field("size_classes", Snap.Classes);
  W.field("superblock_bytes", Snap.SuperblockBytes);
  W.field("hyperblock_bytes", Snap.HyperblockBytes);
  W.field("partial_policy", Snap.PartialPolicyFifo ? "fifo" : "lifo");
  W.field("stats_enabled", Snap.StatsEnabled);
  W.field("tcache_enabled", Snap.TcacheEnabled);
  W.field("tcache_mag_size", Snap.TcacheMagSize);
  W.field("trace_enabled", Snap.TraceEnabled);
  W.field("telemetry_compiled", Snap.TelemetryCompiled);
  W.endObject();

  W.key("space");
  W.beginObject();
  W.field("bytes_in_use", Snap.Space.BytesInUse);
  W.field("peak_bytes", Snap.Space.PeakBytes);
  W.field("map_calls", Snap.Space.MapCalls);
  W.field("unmap_calls", Snap.Space.UnmapCalls);
  W.field("decommit_calls", Snap.Space.DecommitCalls);
  W.field("bytes_decommitted", Snap.Space.BytesDecommitted);
  W.field("map_retries", Snap.Space.MapRetries);
  W.field("map_failures", Snap.Space.MapFailures);
  W.field("bytes_reserved", Snap.Space.BytesReserved);
  W.field("reserve_calls", Snap.Space.ReserveCalls);
  W.endObject();

  W.key("counters");
  W.beginObject();
  for (unsigned C = 0; C < NumCounters; ++C)
    W.field(counterName(static_cast<Counter>(C)), Snap.Counters[C]);
  W.endObject();

  W.key("gauges");
  W.beginObject();
  W.field("cached_superblocks", Snap.CachedSuperblocks);
  W.field("descriptors_minted", Snap.DescriptorsMinted);
  W.field("hazard_retired", Snap.HazardRetired);
  W.field("hazard_scans", Snap.HazardScans);
  W.field("hazard_reclaims", Snap.HazardReclaims);
  W.field("trace_events_emitted", Snap.TraceEventsEmitted);
  W.field("trace_events_overwritten", Snap.TraceEventsOverwritten);
  W.field("alloctrace_recording", Snap.AllocTraceRecording);
  W.field("alloctrace_ops", Snap.AllocTraceOps);
  W.field("alloctrace_dropped", Snap.AllocTraceDropped);
  W.field("retained_bytes", Snap.RetainedBytes);
  W.field("decommitted_superblocks", Snap.DecommittedSuperblocks);
  W.field("parked_hyperblocks", Snap.ParkedHyperblocks);
  W.field("retain_max_bytes", Snap.RetainMaxBytes);
  W.field("retain_decay_ms", Snap.RetainDecayMs);
  W.field("tcache_caches_minted", Snap.TcacheCachesMinted);
  W.field("tcache_caches_parked", Snap.TcacheCachesParked);
  W.field("tcache_magazine_blocks", Snap.TcacheMagazineBlocks);
  W.field("tcache_depot_blocks", Snap.TcacheDepotBlocks);
  W.field("large_backend_buddy", Snap.LargeBackendBuddy);
  W.field("buddy_spans_reserved", Snap.BuddySpansReserved);
  W.field("buddy_span_bytes", Snap.BuddySpanBytes);
  W.field("buddy_bytes_reserved", Snap.BuddyBytesReserved);
  W.field("buddy_bytes_committed", Snap.BuddyBytesCommitted);
  W.field("buddy_bytes_allocated", Snap.BuddyBytesAllocated);
  W.field("buddy_free_committed_bytes", Snap.BuddyFreeCommittedBytes);
  W.endObject();

  // The v2 addition. Per-path quantiles are exact bucket upper bounds
  // (see LatencyPathStats); full bucket detail goes through the
  // Prometheus exposition instead of bloating this document.
  W.key("latency");
  W.beginObject();
  W.field("enabled", Snap.LatencyEnabled);
  W.field("sample_period", Snap.LatencySamplePeriod);
  W.field("samples", Snap.counter(Counter::LatencySamples));
  W.field("exporter_allocs", Snap.counter(Counter::ExporterAllocs));
  W.key("paths");
  W.beginObject();
  for (unsigned P = 0; P < NumLatencyPaths; ++P) {
    const LatencyPathStats &S = Snap.Latency[P];
    W.key(latencyPathName(static_cast<LatencyPath>(P)));
    W.beginObject();
    W.field("count", S.Count);
    W.field("sum_ns", S.SumNs);
    W.field("max_ns", S.MaxNs);
    W.field("p50_upper_ns", S.P50UpperNs);
    W.field("p99_upper_ns", S.P99UpperNs);
    W.field("p999_upper_ns", S.P999UpperNs);
    W.endObject();
  }
  W.endObject();
  W.key("classes");
  W.beginArray();
  for (unsigned C = 0; C <= NumSizeClasses; ++C) {
    const LatencyClassStats &S = Snap.LatencyClasses[C];
    if (S.Count == 0)
      continue; // Sparse: silent classes carry no information.
    W.beginObject();
    W.field("class", static_cast<std::uint64_t>(C));
    W.field("count", S.Count);
    W.field("sum_ns", S.SumNs);
    W.field("max_ns", S.MaxNs);
    W.endObject();
  }
  W.endArray();
  W.endObject();

  // The v3 addition: per-CAS-site retry/time-in-loop distributions,
  // superblock heat attribution, and watchdog verdicts. Quantiles are
  // bucket upper bounds like the latency section; retries <= 7 land in
  // the LogBuckets singleton buckets and are exact.
  W.key("contention");
  W.beginObject();
  W.field("enabled", Snap.ContentionEnabled);
  W.field("sample_period", Snap.ContentionSamplePeriod);
  W.field("samples", Snap.ContentionSamples);
  W.key("sites");
  W.beginObject();
  for (unsigned S = 0; S < NumContentionSites; ++S) {
    const ContentionSiteStats &C = Snap.Contention[S];
    W.key(contentionSiteName(static_cast<ContentionSite>(S)));
    W.beginObject();
    W.field("count", C.Count);
    W.field("retries_sum", C.RetriesSum);
    W.field("retries_max", C.RetriesMax);
    W.field("retries_p50", C.RetriesP50);
    W.field("retries_p99", C.RetriesP99);
    W.field("loop_sum_ns", C.LoopSumNs);
    W.field("loop_max_ns", C.LoopMaxNs);
    W.field("loop_p50_upper_ns", C.LoopP50UpperNs);
    W.field("loop_p99_upper_ns", C.LoopP99UpperNs);
    W.endObject();
  }
  W.endObject();
  W.key("classes");
  W.beginArray();
  for (unsigned C = 0; C <= NumSizeClasses; ++C) {
    if (Snap.ContentionClassRetries[C] == 0)
      continue; // Sparse: silent classes carry no information.
    W.beginObject();
    W.field("class", static_cast<std::uint64_t>(C));
    W.field("retries", Snap.ContentionClassRetries[C]);
    W.endObject();
  }
  W.endArray();
  W.key("heat");
  W.beginObject();
  W.field("entries", Snap.ContentionHeatEntries);
  W.field("capacity", Snap.ContentionHeatCapacity);
  W.field("dropped", Snap.ContentionHeatDropped);
  W.key("top");
  W.beginArray();
  for (std::uint32_t I = 0; I < Snap.ContentionHeatCount; ++I) {
    const ContentionHeatEntry &H = Snap.ContentionHeat[I];
    W.beginObject();
    W.field("sb", H.Sb);
    W.field("class", static_cast<std::uint64_t>(H.Class));
    W.field("retries", H.Retries);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  W.key("watchdog");
  W.beginObject();
  W.field("armed", Snap.WatchdogArmed);
  W.field("scans", Snap.WatchdogScans);
  W.field("stalls", Snap.WatchdogStalls);
  W.field("storms", Snap.WatchdogStorms);
  W.endObject();
  W.endObject();

  // The v5 addition: the shared-memory stats segment's own health, so a
  // JSON consumer can correlate this document with the lfm-shmstats-v1
  // frame an out-of-process inspector read (equal epoch = same numbers).
  W.key("shmstats");
  W.beginObject();
  W.field("active", Snap.ShmStatsActive);
  W.field("epoch", Snap.ShmStatsEpoch);
  W.field("publishes", Snap.ShmStatsPublishes);
  W.field("segment_bytes", Snap.ShmStatsBytes);
  W.endObject();

  W.endObject();
}

} // namespace

void lfm::telemetry::writeMetricsJson(const MetricsSnapshot &Snap,
                                      std::FILE *Out) {
  JsonWriter W(Out);
  emitMetricsDoc(W, Snap);
  std::fputc('\n', Out);
}

void lfm::telemetry::writeMetricsJsonFd(const MetricsSnapshot &Snap, int Fd) {
  if (Fd < 0)
    return;
  FdJsonWriter W(Fd);
  emitMetricsDoc(W, Snap);
  W.newline();
}
