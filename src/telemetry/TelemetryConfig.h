//===- telemetry/TelemetryConfig.h - Compile-time telemetry gate -*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one compile-time switch for the observability subsystem.
///
/// LFM_TELEMETRY == 1 (the default): the allocator carries sharded
/// operation counters, per-thread event-trace rings, and JSON export,
/// all runtime-gated per instance via AllocatorOptions (a predicted-null
/// pointer check per site when disabled at runtime).
///
/// LFM_TELEMETRY == 0: every telemetry call site in the allocator compiles
/// to nothing — the hot paths are bit-identical to the pre-telemetry code.
/// The legacy OpStats counters remain available (seed-compatible single
/// atomic block) so the core test suite passes in both configurations, and
/// the export entry points still emit well-formed (reduced) JSON.
///
/// Build with -DLFM_TELEMETRY=0 (CMake: -DLFMALLOC_TELEMETRY=OFF) to
/// select the zero-overhead configuration.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TELEMETRY_TELEMETRYCONFIG_H
#define LFMALLOC_TELEMETRY_TELEMETRYCONFIG_H

#ifndef LFM_TELEMETRY
#define LFM_TELEMETRY 1
#endif

#endif // LFMALLOC_TELEMETRY_TELEMETRYCONFIG_H
