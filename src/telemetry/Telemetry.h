//===- telemetry/Telemetry.h - Allocator observability facade ----*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The facade the allocator core talks to: one CounterSet plus a registry
/// of per-thread trace rings, with Chrome-trace JSON export. Everything on
/// the emission side is lock-free (counter bumps are relaxed fetch-adds,
/// trace emits are wait-free single-writer ring stores); the only locking
/// anywhere is inside the OS when a thread's ring is first mapped.
///
/// The facade owns a private PageAllocator for ring storage so tracing
/// never perturbs the allocator's own space meter — the §4.2.5 space
/// numbers stay honest with telemetry on.
///
/// Call sites in the allocator go through the LFM_TEL_* macros below,
/// which compile to nothing under LFM_TELEMETRY=0.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TELEMETRY_TELEMETRY_H
#define LFMALLOC_TELEMETRY_TELEMETRY_H

#include "os/PageAllocator.h"
#include "support/ThreadRegistry.h"
#include "telemetry/Counters.h"
#include "telemetry/LatencyPath.h"
#include "telemetry/TelemetryConfig.h"
#include "telemetry/TraceRing.h"

#if LFM_TELEMETRY
#include "telemetry/ContentionRecorder.h"
#include "telemetry/LatencyRecorder.h"
#endif

#include <atomic>
#include <cstdint>
#include <cstdio>

namespace lfm {
namespace telemetry {

/// Per-instance telemetry: sharded counters, optional per-thread trace
/// rings, JSON export. Constructed in-place by the allocator inside its
/// control region.
class Telemetry {
public:
  /// Highest threadIndex() that can own a trace ring. Threads beyond this
  /// still count ops (counters shard by index modulo) but their trace
  /// events are dropped and tallied under Counter::TraceDrops.
  static constexpr std::uint32_t MaxTraceThreads = 256;

  struct Options {
    bool Trace = false; ///< Record events into per-thread rings.
    std::uint32_t TraceEventsPerThread = 4096; ///< Ring capacity (pow2'd up).
    /// Mean operations between latency samples (0 = latency recording off,
    /// 1 = time every operation).
    std::uint64_t LatencySamplePeriod = 0;
    /// Seed for the latency sampler's per-thread gap RNGs (0 = default).
    std::uint64_t LatencySeed = 0;
    /// Mean retry-loop entries between contention samples (0 = contention
    /// recording off unless the watchdog is armed, 1 = sample every loop).
    std::uint64_t ContentionSamplePeriod = 0;
    /// Seed for the contention sampler's per-thread gap RNGs (0 = default).
    std::uint64_t ContentionSeed = 0;
    /// Superblock heat-table capacity (clamped and rounded up to a power
    /// of two by the recorder).
    std::uint64_t ContentionHeatCapacity = 512;
    /// Arm the progress watchdog (scanned from the stats-exporter thread).
    bool ContentionWatchdog = false;
    /// Watchdog: a busy retry loop older than this is reported as a stall
    /// (or a storm, if it is still making attempts).
    std::uint64_t ContentionStallMs = 100;
    /// Watchdog: attempts in one loop at/beyond this count as a storm.
    std::uint64_t ContentionStormRetries = 1u << 20;
  };

  explicit Telemetry(const Options &Opts);
  ~Telemetry();

  Telemetry(const Telemetry &) = delete;
  Telemetry &operator=(const Telemetry &) = delete;

  /// Counter bump: relaxed fetch-add on this thread's shard.
  void count(Counter C, std::uint64_t N = 1) { Counters.add(C, N); }

  /// \returns the aggregated value of \p C.
  std::uint64_t counterTotal(Counter C) const { return Counters.total(C); }

  const CounterSet &counters() const { return Counters; }

  /// Records a trace event on this thread's ring (creating the ring on
  /// first use). No-op when tracing is off.
  void trace(EventType Type, std::uint64_t Arg0 = 0, std::uint64_t Arg1 = 0);

  bool traceEnabled() const { return TraceOn; }

  /// Sum of events ever emitted across all rings.
  std::uint64_t traceEventsEmitted() const;

  /// Sum of events overwritten (lost to ring wraparound) across all rings.
  std::uint64_t traceEventsOverwritten() const;

  /// Writes all rings, merged and sorted by timestamp, as Chrome trace
  /// JSON ({"traceEvents":[...]}; load via chrome://tracing or Perfetto).
  void writeTraceJson(std::FILE *Out) const;

#if LFM_TELEMETRY
  /// Latency sampling gate (see LatencyRecorder::begin). Callers reach
  /// these through the LFM_LAT_* macros in LFAllocator.cpp, which compile
  /// to nothing under LFM_TELEMETRY=0 — hence the gate here.
  std::uint64_t latencyBegin() { return Lat.begin(); }
  void latencyEnd(std::uint64_t Start, LatencyPath P, unsigned Class) {
    Lat.end(Start, P, Class);
  }
  LatencyRecorder &latency() { return Lat; }
  const LatencyRecorder &latency() const { return Lat; }

  /// Contention recorder (per-CAS-site retry distributions, superblock
  /// heat, progress watchdog). Hot-path calls reach it through the global
  /// hook in ContentionHook.h, not through this accessor.
  ContentionRecorder &contention() { return Cont; }
  const ContentionRecorder &contention() const { return Cont; }
#endif

private:
  TraceRing *myRing();

  CounterSet Counters;
  const bool TraceOn;
  const std::uint32_t RingCapacity; ///< Power of two.
  /// Ring pointers indexed by threadIndex(). Each slot is written once by
  /// its owning thread (store-release) and read by drains (load-acquire).
  std::atomic<TraceRing *> Rings[MaxTraceThreads] = {};
  /// Private page source for ring storage; keeps the allocator's own
  /// space meter free of telemetry overhead.
  PageAllocator RingPages;
#if LFM_TELEMETRY
  LatencyRecorder Lat;
  ContentionRecorder Cont;
#endif
};

} // namespace telemetry
} // namespace lfm

//===----------------------------------------------------------------------===//
// Call-site macros. TelPtr is a (possibly null) Telemetry*; null means the
// instance has telemetry disabled at runtime. Under LFM_TELEMETRY=0 all
// three expand to nothing (arguments unevaluated, so call sites may name
// members that only exist in telemetry builds).
//===----------------------------------------------------------------------===//

#if LFM_TELEMETRY

/// Bump counter Name by 1 if telemetry is on for this instance.
#define LFM_TEL_CTR(TelPtr, Name)                                            \
  do {                                                                       \
    if (LFM_UNLIKELY((TelPtr) != nullptr))                                   \
      (TelPtr)->count(::lfm::telemetry::Counter::Name);                      \
  } while (0)

/// Bump counter Name by N (skipping the zero case entirely).
#define LFM_TEL_CTR_N(TelPtr, Name, N)                                       \
  do {                                                                       \
    if (LFM_UNLIKELY((TelPtr) != nullptr)) {                                 \
      const std::uint64_t TelN_ = (N);                                       \
      if (TelN_ != 0)                                                        \
        (TelPtr)->count(::lfm::telemetry::Counter::Name, TelN_);             \
    }                                                                        \
  } while (0)

/// Record trace event Type with two payload words.
#define LFM_TEL_EVT(TelPtr, Type, A0, A1)                                    \
  do {                                                                       \
    if (LFM_UNLIKELY((TelPtr) != nullptr))                                   \
      (TelPtr)->trace(::lfm::telemetry::EventType::Type,                     \
                      static_cast<std::uint64_t>(A0),                        \
                      static_cast<std::uint64_t>(A1));                       \
  } while (0)

#else // !LFM_TELEMETRY

#define LFM_TEL_CTR(TelPtr, Name)                                            \
  do {                                                                       \
  } while (0)
#define LFM_TEL_CTR_N(TelPtr, Name, N)                                       \
  do {                                                                       \
  } while (0)
#define LFM_TEL_EVT(TelPtr, Type, A0, A1)                                    \
  do {                                                                       \
  } while (0)

#endif // LFM_TELEMETRY

#endif // LFMALLOC_TELEMETRY_TELEMETRY_H
