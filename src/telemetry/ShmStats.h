//===- telemetry/ShmStats.h - Shared-memory stats publication ---*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The writer side of the lfm-shmstats-v1 segment (ShmStatsFormat.h): a
/// process-wide singleton, like the stats exporter and the SIGUSR2
/// handler, that maps one segment and publishes MetricsSnapshot frames
/// into it with plain seqlock'd stores — no locks, no lock-prefixed RMW,
/// no allocation after open(). Publication rides the existing cold paths
/// (exporter tick, ctl action, SIGUSR2, exit), never malloc/free.
///
/// LFM_SHM_STATS selects the backing: a filesystem path maps a file other
/// processes open by name; "1"/"auto"/"memfd" maps an anonymous memfd the
/// inspector discovers through /proc/<pid>/fd. Either way the mapping is
/// named for /proc/<pid>/maps, madvise'd into core dumps, and parseable
/// post-mortem.
///
/// Under LFM_TELEMETRY=0 everything here compiles to inline no-ops and
/// the translation unit is empty — telemetry-OFF builds keep their
/// zero-symbol guarantee.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TELEMETRY_SHMSTATS_H
#define LFMALLOC_TELEMETRY_SHMSTATS_H

#include "telemetry/TelemetryConfig.h"

#include <cstdint>

namespace lfm {
namespace telemetry {

struct MetricsSnapshot;

#if LFM_TELEMETRY

class ShmStats {
public:
  /// Maps and initializes the segment. \p Spec is the LFM_SHM_STATS
  /// value: "1" / "auto" / "memfd" select an anonymous memfd; anything
  /// else is a filesystem path created (0644) and truncated to the
  /// segment size. \returns 0, EALREADY when a segment is already open,
  /// EINVAL for a null/empty spec, or the open/map errno.
  static int open(const char *Spec);

  /// True between a successful open() and close().
  static bool active();

  /// Seqlock-publishes \p Snap into the inactive frame and flips the
  /// active index. Plain stores only; async-signal-safe; a no-op when
  /// inactive. Safe to call concurrently with readers but not with
  /// itself — callers serialize (exporter tick, ctl, signal all funnel
  /// through publishLocked()'s flag).
  static void publish(const MetricsSnapshot &Snap);

  /// Epoch of the most recently published frame (0 = never).
  static std::uint64_t epoch();

  /// Total publish() calls that actually wrote a frame.
  static std::uint64_t publishes();

  /// Mapped segment size in bytes (0 when inactive).
  static std::uint64_t bytes();

  /// The backing spec: the file path, or "memfd:<fd>" for anonymous
  /// segments (the fd number another process resolves via /proc). Empty
  /// when inactive.
  static const char *path();

  /// Unmaps and closes. Tests use this to cycle configurations; the
  /// segment is otherwise intentionally immortal so the final frame
  /// survives into core dumps.
  static void close();
};

#else // !LFM_TELEMETRY

class ShmStats {
public:
  static int open(const char *) { return 0; }
  static bool active() { return false; }
  static void publish(const MetricsSnapshot &) {}
  static std::uint64_t epoch() { return 0; }
  static std::uint64_t publishes() { return 0; }
  static std::uint64_t bytes() { return 0; }
  static const char *path() { return ""; }
  static void close() {}
};

#endif // LFM_TELEMETRY

} // namespace telemetry
} // namespace lfm

#endif // LFMALLOC_TELEMETRY_SHMSTATS_H
