//===- telemetry/DumpSignal.h - Consolidated SIGUSR2 dump arming -*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One registrar for every SIGUSR2-triggered dump. Historically the heap
/// profiler, latency exposition, flight-recorder flush, and shm publish
/// would each have armed the handler themselves — whichever ran last won,
/// and init order decided which dumps fired. Instead, subsystems register
/// an async-signal-safe callback here; the single process-wide handler
/// (installed on first registration, SA_RESTART, errno-preserving) chains
/// every registered callback in registration order.
///
/// Registration is lock-free (CAS-claimed fixed slots) and callbacks are
/// never unregistered implicitly; the capacity is a compile-time constant
/// far above the number of subsystems. Not gated on LFM_TELEMETRY: this
/// is signal plumbing, not telemetry state, and the shim arms it in every
/// build configuration.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TELEMETRY_DUMPSIGNAL_H
#define LFMALLOC_TELEMETRY_DUMPSIGNAL_H

namespace lfm {
namespace telemetry {

/// A dump hook. Must be async-signal-safe: raw-fd I/O over pre-cached
/// state only, no allocation, no locks.
using DumpCallback = void (*)();

inline constexpr unsigned DumpSignalCapacity = 8;

/// Registers \p Cb and installs the SIGUSR2 handler if this is the first
/// registration. Duplicate registrations are idempotent. \returns 0,
/// EINVAL for a null callback, or ENOSPC when the slot table is full.
int dumpSignalRegister(DumpCallback Cb);

/// Removes \p Cb (slot is tombstoned, not reused). The handler stays
/// installed. \returns 0 or ENOENT. Test lifecycle hook.
int dumpSignalUnregister(DumpCallback Cb);

/// Number of currently registered callbacks.
unsigned dumpSignalCount();

/// True once the SIGUSR2 handler has been installed.
bool dumpSignalInstalled();

/// Runs every registered callback, exactly as the signal handler would
/// (errno preserved). The handler itself calls this; tests call it to
/// exercise the chain without signal delivery.
void dumpSignalFire();

} // namespace telemetry
} // namespace lfm

#endif // LFMALLOC_TELEMETRY_DUMPSIGNAL_H
