//===- telemetry/StatsExporter.h - Background stats exporter -----*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An opt-in background thread (jemalloc's background_thread idiom) that
/// periodically snapshots the allocator into files: metrics JSON,
/// Prometheus text, and — when the heap profiler is live — a heap profile.
/// Each artifact is written to "<prefix>.<suffix>.tmp" and atomically
/// rename(2)d over "<prefix>.<suffix>", so scrapers never observe a torn
/// file.
///
/// The exporter lives in the telemetry library but knows nothing about the
/// allocator: the facade hands it an emit callback that writes one artifact
/// to a file descriptor. Those callbacks must be allocation-free — the
/// exporter thread calling back into the instrumented malloc would be
/// self-observation. The latency recorder polices this: any sample recorded
/// while onExporterThread() is true lands in the exporterSamples() watchdog
/// counter, and the lifecycle test runs at sampling period 1 so a single
/// stray allocation fails it.
///
/// Process-wide singleton (one exporter, like one SIGUSR2 handler). A
/// fork() leaves the child with no exporter thread; pthread_atfork handlers
/// keep the child's state consistent so it can start its own. Process exit
/// stops the thread via atexit before static destructors run.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TELEMETRY_STATSEXPORTER_H
#define LFMALLOC_TELEMETRY_STATSEXPORTER_H

#include <cstdint>

namespace lfm {
namespace telemetry {

namespace detail {
/// True on the exporter thread (and inside runCycleNow()) — the latency
/// recorder's reentrancy watchdog reads this.
extern thread_local bool OnExporterThread;
} // namespace detail

inline bool onExporterThread() { return detail::OnExporterThread; }

class StatsExporter {
public:
  /// The artifacts one export cycle produces, in emission order.
  enum Artifact : int {
    MetricsJson = 0, ///< "<prefix>.metrics.json"
    Prometheus = 1,  ///< "<prefix>.prom"
    HeapProfile = 2, ///< "<prefix>.heap"
    NumArtifacts = 3
  };

  /// Writes artifact \p A to \p Fd. \returns 0 on success, negative to
  /// skip this artifact this cycle (its .tmp is discarded and any previous
  /// snapshot file is left in place). MUST NOT allocate from the
  /// instrumented allocator.
  using EmitFn = int (*)(void *Ctx, int A, int Fd);

  /// Starts the exporter: one snapshot every \p IntervalMs milliseconds
  /// into files named from \p Prefix (may include directories; truncated
  /// to 255 bytes). \returns 0, or EINVAL for a zero interval / null
  /// emitter, EALREADY if running, or the pthread_create error.
  static int start(std::uint64_t IntervalMs, const char *Prefix, EmitFn Emit,
                   void *Ctx);

  /// Stops and joins the exporter thread. Idempotent; \returns 0 always.
  static int stop();

  static bool running();

  /// Completed export cycles since process start (monotone across
  /// start/stop pairs; reset only by fork into the child).
  static std::uint64_t cycles();

  /// Runs one export cycle synchronously on the calling thread, with
  /// onExporterThread() raised, using the given emitter. Works whether or
  /// not the background thread is running — tests and the exporter.flush
  /// ctl key use this to get a deterministic snapshot without sleeping.
  /// \returns 0 or the first artifact's errno.
  static int runCycleNow(const char *Prefix, EmitFn Emit, void *Ctx);

  /// Blocks (sleep-polling) until cycles() >= \p MinCycles or \p TimeoutMs
  /// elapses. \returns true if the count was reached.
  static bool waitForCycles(std::uint64_t MinCycles, std::uint64_t TimeoutMs);
};

} // namespace telemetry
} // namespace lfm

#endif // LFMALLOC_TELEMETRY_STATSEXPORTER_H
