//===- telemetry/LatencyRecorder.h - Sampled latency recording ---*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sampled per-path operation-latency recording. Every allocate/deallocate
/// asks begin() whether it is sampled: the common answer is a relaxed
/// load, decrement, store on the thread's own cache-line-private countdown
/// slot — deliberately NOT an atomic RMW (the heap profiler's discipline;
/// a lock-prefixed op would cost more than the fast-path malloc it is
/// measuring). Roughly one operation in SamplePeriod reads the cycle
/// counter instead, and its end() call files the elapsed nanoseconds into
/// the outcome path's sharded log-linear histogram plus a compact
/// per-size-class summary.
///
/// The inter-sample gap is drawn uniformly from [1, 2*Period - 1] (mean
/// Period) by a per-thread xorshift seeded from (Seed, thread slot):
/// deterministic for single-threaded replay under a fixed seed, while
/// avoiding the strided-workload aliasing a fixed stride would suffer.
///
/// All storage (histograms, class summaries, thread slots) lives in one
/// mapping from a private PageAllocator, so enabling latency sampling
/// never perturbs the instrumented allocator's §4.2.5 space meter.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TELEMETRY_LATENCYRECORDER_H
#define LFMALLOC_TELEMETRY_LATENCYRECORDER_H

#include "lfmalloc/SizeClasses.h"
#include "os/PageAllocator.h"
#include "support/CycleClock.h"
#include "support/Platform.h"
#include "support/ThreadRegistry.h"
#include "telemetry/LatencyHistogram.h"
#include "telemetry/LatencyPath.h"

#include <atomic>
#include <cstdint>

namespace lfm {
namespace telemetry {

/// Per-size-class summary slots: one per small class plus one shared
/// bucket for the large/OS path (index NumSizeClasses).
inline constexpr unsigned NumLatencyClasses = NumSizeClasses + 1;

/// Thread sampling slots (power of two). Indices beyond this share slots;
/// a lost decrement only perturbs one interval draw.
inline constexpr unsigned MaxLatencyThreads = 256;

class LatencyRecorder {
public:
  /// Sentinel class for operations with no size-class attribution
  /// (trim, OOM rescue).
  static constexpr unsigned NoClass = ~0u;

  struct Options {
    /// Mean operations between samples. 0 disables recording entirely
    /// (no tables mapped); 1 samples every operation.
    std::uint64_t SamplePeriod = 64;
    /// Base seed for the per-thread gap RNGs; 0 keeps the default.
    std::uint64_t Seed = 0;
  };

  explicit LatencyRecorder(const Options &O);
  ~LatencyRecorder();
  LatencyRecorder(const LatencyRecorder &) = delete;
  LatencyRecorder &operator=(const LatencyRecorder &) = delete;

  /// False when sampling is off (period 0) or the tables could not be
  /// mapped — every hook is then a single predicted branch.
  bool enabled() const { return Tabs != nullptr; }

  std::uint64_t samplePeriod() const { return Period; }

  /// Sampling gate, called at the top of an operation. \returns 0 for the
  /// common unsampled case, or a nonzero start tick to be passed to
  /// end() at the operation's outcome point.
  std::uint64_t begin() {
    Tables *T = Tabs;
    if (LFM_UNLIKELY(T == nullptr))
      return 0;
    ThreadState &S = T->Threads[threadIndex() & (MaxLatencyThreads - 1)];
    const std::int64_t C = S.Countdown.load(std::memory_order_relaxed);
    if (LFM_LIKELY(C > 1)) {
      S.Countdown.store(C - 1, std::memory_order_relaxed);
      return 0;
    }
    S.Countdown.store(nextGap(S), std::memory_order_relaxed);
    const std::uint64_t Tick = cycleclock::now();
    return Tick != 0 ? Tick : 1; // 0 is the "not sampled" sentinel.
  }

  /// Completes a sampled operation: files now() - StartTicks under \p P
  /// and \p Class (a small class index, NumSizeClasses for large, or
  /// NoClass). No-op unless \p StartTicks came from begin().
  void end(std::uint64_t StartTicks, LatencyPath P, unsigned Class) {
    recordNs(P, Class,
             cycleclock::ticksToNanos(cycleclock::now() - StartTicks));
  }

  /// Unsampled timing entry for rare paths (trim, OOM rescue) that are
  /// recorded on every occurrence. \returns the start tick, or 0 when
  /// recording is off.
  std::uint64_t rareBegin() const {
    return Tabs != nullptr ? cycleclock::now() | 1 : 0;
  }
  void rareEnd(std::uint64_t StartTicks, LatencyPath P) {
    if (StartTicks != 0)
      end(StartTicks, P, NoClass);
  }

  /// Files one pre-converted nanosecond sample (export/test entry).
  void recordNs(LatencyPath P, unsigned Class, std::uint64_t Ns);

  /// Merges path \p P's shards into \p Out (Out is overwritten).
  void snapshotPath(LatencyPath P, LatencyHistogramSnapshot &Out) const;

  /// Compact per-class summary read-back.
  void classSummary(unsigned Class, std::uint64_t &Count, std::uint64_t &Sum,
                    std::uint64_t &Max) const;

  /// Total samples recorded. Derived by summing the path histograms'
  /// buckets — a read-path walk, so recording pays no dedicated counter
  /// RMW per sample.
  std::uint64_t samples() const;

  /// Watchdog: samples recorded by a thread that was inside the background
  /// stats exporter — the exporter allocating through the instrumented
  /// path. Proven zero by the exporter lifecycle test at period 1.
  std::uint64_t exporterSamples() const;

private:
  struct alignas(CacheLineSize) ThreadState {
    std::atomic<std::int64_t> Countdown{0};
    std::atomic<std::uint64_t> Rng{0};
  };

  // Per-thread class summaries, updated with owner-thread plain
  // load/store (the countdown discipline) — a lock-prefixed RMW costs
  // more than everything else on the sampled path combined, and these
  // slots are thread-private for the first MaxLatencyThreads threads.
  // Threads beyond that share slots and a collision can lose a summary
  // count; the histograms stay fully atomic, so the headline data is
  // exact regardless.
  struct alignas(CacheLineSize) ClassLocal {
    std::atomic<std::uint64_t> Count[NumLatencyClasses];
    std::atomic<std::uint64_t> Sum[NumLatencyClasses];
    std::atomic<std::uint64_t> Max[NumLatencyClasses];
  };

  /// Per-thread per-path Sum/Max, same plain owner-thread discipline as
  /// ClassLocal; the path histograms' bucket counts stay atomic, so this
  /// leaves exactly one lock-prefixed RMW on the sampled path.
  struct alignas(CacheLineSize) PathLocal {
    std::atomic<std::uint64_t> Sum[NumLatencyPaths];
    std::atomic<std::uint64_t> Max[NumLatencyPaths];
  };

  // Everything mutable lives in the page-mapped Tables, NOT on the
  // LatencyRecorder object: the object's own line holds Period/Seed/Tabs,
  // which every begin() reads, and any counter written on the sample path
  // would keep invalidating that line under every reader's feet —
  // measurable false sharing on the hot path.
  struct Tables {
    LatencyHistogram Hists[NumLatencyPaths];
    ClassLocal Classes[MaxLatencyThreads];
    PathLocal Paths[MaxLatencyThreads];
    ThreadState Threads[MaxLatencyThreads];
    alignas(CacheLineSize) std::atomic<std::uint64_t> ExporterSamples;
  };

  std::int64_t nextGap(ThreadState &S);

  std::uint64_t Period = 0;
  std::uint64_t Seed = 0;
  Tables *Tabs = nullptr;
  PageAllocator TablePages; ///< Private: keeps the space meter honest.
};

} // namespace telemetry
} // namespace lfm

#endif // LFMALLOC_TELEMETRY_LATENCYRECORDER_H
