//===- telemetry/ContentionHook.h - CAS-loop instrumentation -----*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation face of the contention recorder, shaped to be
/// includable from the lowest layers (lockfree/) in every build
/// configuration:
///
///  - Under LFM_TELEMETRY=0 the macros expand to nothing and this header
///    contributes zero symbols (the nm check in CI asserts it).
///
///  - Under LFM_TELEMETRY=1 a retry loop wraps itself in a ContentionScope.
///    With no recorder registered the whole scope costs one relaxed load
///    and a predicted branch at loop entry; with one registered, loop
///    entry runs the countdown sampling gate, every retry iteration
///    (attempt >= 2 — already off the fast path) publishes progress for
///    the watchdog, and loop exit files the sampled retries-per-op and
///    time-in-loop.
///
/// The scope's destructor is the safety net for early-exit paths (a pop
/// returning empty from mid-loop): recording happens at most once, at the
/// first of done() / destruction.
///
/// Usage (the site name keys the scope variable, so a function with
/// several consecutive retry loops gives each its own scope):
/// \code
///   LFM_CONT_LOOP(TreiberPop);
///   for (;;) {
///     LFM_CONT_ATTEMPT(TreiberPop);
///     ...
///     if (cas(...)) {
///       LFM_CONT_DONE(TreiberPop); // or LFM_CONT_DONE_ATTR(site, Class, Sb)
///       return ...;
///     }
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TELEMETRY_CONTENTIONHOOK_H
#define LFMALLOC_TELEMETRY_CONTENTIONHOOK_H

#include "telemetry/TelemetryConfig.h"

#if LFM_TELEMETRY

#include "support/Platform.h"
#include "telemetry/ContentionSite.h"

#include <atomic>
#include <cstdint>

namespace lfm {
namespace telemetry {

class ContentionRecorder;

/// The process-wide recorder the hooks report to. The owning allocator's
/// recorder claims this by CAS in its constructor (first one wins — in
/// practice the default allocator; secondary test allocators observe the
/// claim failing and simply stay unhooked from the global) and releases it
/// in its destructor. Inline variable: compiled out entirely with this
/// block under LFM_TELEMETRY=0.
inline std::atomic<ContentionRecorder *> GlobalContentionRecorder{nullptr};

namespace contention_detail {
/// Out-of-line slow paths (ContentionRecorder is incomplete here so the
/// lockfree headers stay free of telemetry internals).
std::uint64_t hookLoopBegin(ContentionRecorder &R);
void hookRetry(ContentionRecorder &R, ContentionSite S, std::uint64_t Attempts,
               std::uint64_t &FirstRetryTick);
void hookDone(ContentionRecorder &R, ContentionSite S, std::uint64_t StartTick,
              std::uint64_t Attempts, unsigned Class, const void *Sb);
} // namespace contention_detail

/// RAII instrumentation of one retry-loop execution.
class ContentionScope {
public:
  explicit ContentionScope(ContentionSite S) : Site(S) {
    R = GlobalContentionRecorder.load(std::memory_order_relaxed);
    if (LFM_UNLIKELY(R != nullptr))
      StartTick = contention_detail::hookLoopBegin(*R);
  }

  ContentionScope(const ContentionScope &) = delete;
  ContentionScope &operator=(const ContentionScope &) = delete;

  ~ContentionScope() { done(); }

  /// Call at the top of every loop iteration. The first iteration is free
  /// (a loop that succeeds immediately had no contention); from the second
  /// on, progress is published for the watchdog.
  void attempt() {
    if (LFM_LIKELY(R == nullptr))
      return;
    ++Attempts;
    if (LFM_UNLIKELY(Attempts >= 2))
      contention_detail::hookRetry(*R, Site, Attempts, FirstRetryTick);
  }

  /// Call at loop exit, optionally attributing the loop to a size class
  /// and the superblock being fought over. Idempotent; the destructor
  /// calls it for early-exit paths.
  void done(unsigned Class = ~0u, const void *Sb = nullptr) {
    if (LFM_LIKELY(R == nullptr))
      return;
    if (Attempts >= 2 || StartTick != 0)
      contention_detail::hookDone(*R, Site, StartTick, Attempts, Class, Sb);
    R = nullptr;
  }

  /// True when a recorder will consume this scope — lets DONE_ATTR call
  /// sites skip evaluating attribution expressions (a size-class lookup on
  /// a hot free path) in the common recorder-off case.
  bool armed() const { return R != nullptr; }

private:
  ContentionRecorder *R;
  ContentionSite Site;
  std::uint64_t StartTick = 0;
  std::uint64_t Attempts = 0;
  std::uint64_t FirstRetryTick = 0;
};

} // namespace telemetry
} // namespace lfm

#define LFM_CONT_LOOP(SiteName)                                                \
  ::lfm::telemetry::ContentionScope LfmCont_##SiteName {                       \
    ::lfm::telemetry::ContentionSite::SiteName                                 \
  }
#define LFM_CONT_ATTEMPT(SiteName) LfmCont_##SiteName.attempt()
#define LFM_CONT_DONE(SiteName) LfmCont_##SiteName.done()
/// Attribution expressions are only evaluated when a recorder is live.
#define LFM_CONT_DONE_ATTR(SiteName, ClassV, SbV)                              \
  do {                                                                         \
    if (LFM_UNLIKELY(LfmCont_##SiteName.armed()))                              \
      LfmCont_##SiteName.done((ClassV), (SbV));                                \
  } while (0)

#else // !LFM_TELEMETRY

#define LFM_CONT_LOOP(SiteName)                                                \
  do {                                                                         \
  } while (0)
#define LFM_CONT_ATTEMPT(SiteName)                                             \
  do {                                                                         \
  } while (0)
#define LFM_CONT_DONE(SiteName)                                                \
  do {                                                                         \
  } while (0)
#define LFM_CONT_DONE_ATTR(SiteName, ClassV, SbV)                              \
  do {                                                                         \
  } while (0)

#endif // LFM_TELEMETRY

#endif // LFMALLOC_TELEMETRY_CONTENTIONHOOK_H
