//===- telemetry/TraceRing.h - Per-thread event-trace rings ------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-size per-thread ring buffers for allocator trace events.
///
/// Each thread owns exactly one ring and is its only writer, so emitting an
/// event is wait-free: no CAS, no fences shared with other writers, just
/// slot stores and a head publish. Overwrite-oldest semantics keep emission
/// constant-time forever; the ring always holds the newest Capacity events.
///
/// Readers (the drain/export path) run concurrently with the writer and
/// never stop it. Each slot carries its own sequence number in the
/// single-writer seqlock style (Boehm, "Can seqlocks get along with
/// programming language memory models?", MSPC'12): the writer bumps the
/// slot sequence to odd, fills the payload, bumps to even with release;
/// a reader accepts a slot only if it observes the same even sequence
/// before and after copying the payload. A slot being overwritten mid-read
/// is simply discarded — the trace is best-effort by design, the allocator
/// is not.
///
/// All payload fields are relaxed atomics rather than plain fields so the
/// torn-read race window is defined behavior and ThreadSanitizer-clean.
///
/// Naming note: this is one of three unrelated "trace" mechanisms in the
/// tree. These rings record *allocator-internal* events (superblock
/// lifecycle, OS maps) for Chrome-trace export; harness/TraceWorkload.h
/// generates *synthetic* application op streams for benchmarking; and
/// trace/AllocTrace.h is the allocation flight recorder, which captures a
/// *real program's* malloc/free stream for replay. See the disambiguation
/// in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TELEMETRY_TRACERING_H
#define LFMALLOC_TELEMETRY_TRACERING_H

#include "support/Platform.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

namespace lfm {
namespace telemetry {

/// What happened. Superblock state transitions mirror the paper's anchor
/// state machine (ACTIVE/FULL/PARTIAL/EMPTY, Fig. 2); the OS events mirror
/// the map/unmap traffic behind §3.2.5.
enum class EventType : std::uint32_t {
  None = 0,    ///< Unused slot.
  SbNew,       ///< Fresh superblock installed as Active (MallocFromNewSB).
  SbActive,    ///< PARTIAL superblock re-installed as Active.
  SbPartial,   ///< Superblock demoted/promoted to PARTIAL.
  SbFull,      ///< Superblock's last credit consumed; now FULL.
  SbEmpty,     ///< Last block freed; superblock retired to the cache.
  DescRetired, ///< Descriptor passed to the hazard domain for reclamation.
  OsMap,       ///< Pages mapped from the OS (arg0 = bytes).
  OsUnmap,     ///< Pages returned to the OS (arg0 = bytes).
  OsDecommit,  ///< Physical pages released, mapping kept (arg0 = bytes).
  Trim,        ///< trimRetained() pass (arg0 = bytes released, arg1 =
               ///< superblocks examined).
  EventTypeCount
};

/// \returns the stable name exported in trace JSON.
const char *eventTypeName(EventType T);

/// One recorded event. Payload meaning depends on Type; by convention Arg0
/// is the primary address or byte count and Arg1 the secondary value
/// (block size, etc.).
struct TraceEvent {
  std::uint64_t TimestampNs; ///< monotonicNanos() at emission.
  std::uint64_t Arg0;
  std::uint64_t Arg1;
  std::uint32_t Tid; ///< Dense threadIndex() of the emitting thread.
  EventType Type;
};

/// Single-writer, multi-reader ring of trace events.
///
/// Memory layout: one TraceRing header immediately followed by Capacity
/// slots, sized by bytesFor() and placed into page-allocator memory by the
/// Telemetry facade (the ring never allocates).
class TraceRing {
public:
  /// \returns the allocation size for a ring of \p Capacity slots
  /// (power of two).
  static constexpr std::size_t bytesFor(std::uint32_t Capacity) {
    return sizeof(TraceRing) + static_cast<std::size_t>(Capacity) *
                                   sizeof(Slot);
  }

  /// Constructs a ring for \p Tid with \p Capacity slots (power of two) in
  /// storage of at least bytesFor(Capacity) bytes.
  TraceRing(std::uint32_t Tid, std::uint32_t Capacity)
      : Head(0), OwnerTid(Tid), CapacityMask(Capacity - 1) {
    for (std::uint32_t I = 0; I < Capacity; ++I)
      new (&slots()[I]) Slot();
  }

  TraceRing(const TraceRing &) = delete;
  TraceRing &operator=(const TraceRing &) = delete;

  /// Records an event. Owner thread only; wait-free.
  void emit(EventType Type, std::uint64_t TimestampNs, std::uint64_t Arg0,
            std::uint64_t Arg1) {
    const std::uint64_t H = Head.load(std::memory_order_relaxed);
    Slot &S = slots()[H & CapacityMask];
    const std::uint64_t Seq0 = S.Seq.load(std::memory_order_relaxed);
    // Mark the slot unstable (odd) before touching the payload, and make
    // sure readers that saw the odd value cannot observe payload stores
    // reordered before it.
    S.Seq.store(Seq0 + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    S.TimestampNs.store(TimestampNs, std::memory_order_relaxed);
    S.Arg0.store(Arg0, std::memory_order_relaxed);
    S.Arg1.store(Arg1, std::memory_order_relaxed);
    S.Type.store(static_cast<std::uint32_t>(Type),
                 std::memory_order_relaxed);
    // Stable again (even), with release so a reader that sees the new
    // sequence also sees the payload.
    S.Seq.store(Seq0 + 2, std::memory_order_release);
    Head.store(H + 1, std::memory_order_release);
  }

  /// Copies the currently stable events, oldest first, into \p Out
  /// (capacity \p MaxOut). Safe concurrently with the writer; slots the
  /// writer races past are skipped. \returns the number of events copied.
  std::uint32_t drain(TraceEvent *Out, std::uint32_t MaxOut) const {
    const std::uint64_t H = Head.load(std::memory_order_acquire);
    const std::uint64_t Cap = CapacityMask + 1;
    std::uint64_t Begin = H > Cap ? H - Cap : 0;
    std::uint32_t N = 0;
    for (std::uint64_t I = Begin; I < H && N < MaxOut; ++I) {
      if (readSlot(I, Out[N]))
        ++N;
    }
    return N;
  }

  /// \returns the total number of events ever emitted into this ring.
  std::uint64_t emitted() const {
    return Head.load(std::memory_order_acquire);
  }

  /// \returns how many emitted events have been overwritten (lost).
  std::uint64_t overwritten() const {
    const std::uint64_t H = emitted();
    const std::uint64_t Cap = CapacityMask + 1;
    return H > Cap ? H - Cap : 0;
  }

  std::uint32_t ownerTid() const { return OwnerTid; }
  std::uint32_t capacity() const { return CapacityMask + 1; }

private:
  struct Slot {
    /// Seqlock word: odd while the writer is mid-update, even when stable.
    std::atomic<std::uint64_t> Seq{0};
    std::atomic<std::uint64_t> TimestampNs{0};
    std::atomic<std::uint64_t> Arg0{0};
    std::atomic<std::uint64_t> Arg1{0};
    std::atomic<std::uint32_t> Type{0};
  };

  Slot *slots() { return reinterpret_cast<Slot *>(this + 1); }
  const Slot *slots() const {
    return reinterpret_cast<const Slot *>(this + 1);
  }

  /// Seqlock read of logical slot \p Index into \p Out.
  ///
  /// The slot's sequence after its w-th write is 2w, so the logical index
  /// pins the exact sequence a valid copy must observe: anything else
  /// means the slot is unwritten, mid-update, or was lapped by the writer
  /// and now holds a newer event — all rejected, which keeps a racing
  /// drain's accepted events exactly the surviving members of the
  /// [Head - Capacity, Head) window, in order.
  /// \returns false if the slot did not stably hold event \p Index.
  bool readSlot(std::uint64_t Index, TraceEvent &Out) const {
    const Slot &S = slots()[Index & CapacityMask];
    const std::uint64_t WantSeq = (Index / (CapacityMask + 1) + 1) * 2;
    if (S.Seq.load(std::memory_order_acquire) != WantSeq)
      return false;
    Out.TimestampNs = S.TimestampNs.load(std::memory_order_relaxed);
    Out.Arg0 = S.Arg0.load(std::memory_order_relaxed);
    Out.Arg1 = S.Arg1.load(std::memory_order_relaxed);
    Out.Type = static_cast<EventType>(S.Type.load(std::memory_order_relaxed));
    Out.Tid = OwnerTid;
    std::atomic_thread_fence(std::memory_order_acquire);
    return S.Seq.load(std::memory_order_relaxed) == WantSeq &&
           Out.Type != EventType::None &&
           Out.Type < EventType::EventTypeCount;
  }

  std::atomic<std::uint64_t> Head; ///< Next logical slot to write.
  const std::uint32_t OwnerTid;
  const std::uint32_t CapacityMask;
};

} // namespace telemetry
} // namespace lfm

#endif // LFMALLOC_TELEMETRY_TRACERING_H
