//===- telemetry/LatencyPath.h - Latency outcome-path taxonomy ---*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The outcome paths latency samples are attributed to. An operation is
/// filed under the path that actually served it — a malloc that missed the
/// Active credits and took a fresh superblock counts once, under
/// MallocNewSb — so the per-path histograms decompose the latency
/// distribution exactly (docs/OBSERVABILITY.md, "Tail latency").
///
/// This header is plain enum + names with no storage, so it is safe to
/// include from every build configuration including LFM_TELEMETRY=0.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TELEMETRY_LATENCYPATH_H
#define LFMALLOC_TELEMETRY_LATENCYPATH_H

namespace lfm {
namespace telemetry {

enum class LatencyPath : unsigned {
  MallocActive,  ///< Served by the Active-credit fast path (Fig. 4).
  MallocPartial, ///< Served from a PARTIAL superblock.
  MallocNewSb,   ///< Installed a fresh superblock (includes ENOMEM fails).
  MallocLarge,   ///< Large request: direct OS map.
  FreeSmall,     ///< Small free: anchor push, superblock stays live.
  FreeLarge,     ///< Large free: direct OS unmap.
  FreeSbRelease, ///< Small free that emptied its superblock and released it.
  Trim,          ///< trimRetained() pass returning memory to the OS.
  OomRescue,     ///< Map failure recovered by trimming the retained cache.
  MallocTcache,  ///< Served by the thread-local magazine (p50 is the pure
                 ///< plain-load hit; the tail carries batch refills).
  FreeTcache,    ///< Absorbed by the thread-local magazine (tail carries
                 ///< overflow flushes).
  MallocLargeBuddy, ///< Large request served from a buddy span (no syscall
                    ///< on the steady-state path; MallocLarge keeps meaning
                    ///< a direct OS map, i.e. os backend or buddy fallback).
  PathCount
};

inline constexpr unsigned NumLatencyPaths =
    static_cast<unsigned>(LatencyPath::PathCount);

/// Stable snake_case name used in metrics JSON and Prometheus labels.
constexpr const char *latencyPathName(LatencyPath P) {
  switch (P) {
  case LatencyPath::MallocActive:
    return "malloc_active";
  case LatencyPath::MallocPartial:
    return "malloc_partial";
  case LatencyPath::MallocNewSb:
    return "malloc_new_sb";
  case LatencyPath::MallocLarge:
    return "malloc_large";
  case LatencyPath::FreeSmall:
    return "free_small";
  case LatencyPath::FreeLarge:
    return "free_large";
  case LatencyPath::FreeSbRelease:
    return "free_sb_release";
  case LatencyPath::Trim:
    return "trim";
  case LatencyPath::OomRescue:
    return "oom_rescue";
  case LatencyPath::MallocTcache:
    return "malloc_tcache";
  case LatencyPath::FreeTcache:
    return "free_tcache";
  case LatencyPath::MallocLargeBuddy:
    return "malloc_large_buddy";
  case LatencyPath::PathCount:
    break;
  }
  return "unknown";
}

} // namespace telemetry
} // namespace lfm

#endif // LFMALLOC_TELEMETRY_LATENCYPATH_H
