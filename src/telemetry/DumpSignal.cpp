//===- telemetry/DumpSignal.cpp - Consolidated SIGUSR2 dump arming --------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "telemetry/DumpSignal.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>

using namespace lfm;
using namespace lfm::telemetry;

namespace {

// Fixed CAS-claimed slot table. A slot holds null (free), a live
// callback, or Tombstone after unregistration; the handler walks all
// claimed slots in registration order. Tombstoned slots are not reused —
// capacity is sized for subsystems, not churn.
void tombstoneFn() {}
constexpr DumpCallback Tombstone = &tombstoneFn;

std::atomic<DumpCallback> Slots[DumpSignalCapacity] = {};
std::atomic<bool> HandlerInstalled{false};

void sigusr2Chain(int) {
  const int Saved = errno;
  dumpSignalFire();
  errno = Saved;
}

} // namespace

int lfm::telemetry::dumpSignalRegister(DumpCallback Cb) {
  if (Cb == nullptr || Cb == Tombstone)
    return EINVAL;
  for (unsigned I = 0; I < DumpSignalCapacity; ++I) {
    DumpCallback Cur = Slots[I].load(std::memory_order_acquire);
    if (Cur == Cb)
      return 0; // Idempotent: already armed.
    if (Cur != nullptr)
      continue;
    DumpCallback Expected = nullptr;
    if (Slots[I].compare_exchange_strong(Expected, Cb,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      if (!HandlerInstalled.exchange(true, std::memory_order_acq_rel)) {
        struct sigaction SA;
        std::memset(&SA, 0, sizeof(SA));
        SA.sa_handler = sigusr2Chain;
        sigemptyset(&SA.sa_mask);
        SA.sa_flags = SA_RESTART;
        sigaction(SIGUSR2, &SA, nullptr);
      }
      return 0;
    }
    if (Expected == Cb)
      return 0; // Lost the race to a concurrent identical registration.
  }
  return ENOSPC;
}

int lfm::telemetry::dumpSignalUnregister(DumpCallback Cb) {
  if (Cb == nullptr)
    return EINVAL;
  for (unsigned I = 0; I < DumpSignalCapacity; ++I) {
    DumpCallback Expected = Cb;
    if (Slots[I].compare_exchange_strong(Expected, Tombstone,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire))
      return 0;
  }
  return ENOENT;
}

unsigned lfm::telemetry::dumpSignalCount() {
  unsigned N = 0;
  for (unsigned I = 0; I < DumpSignalCapacity; ++I) {
    const DumpCallback Cb = Slots[I].load(std::memory_order_acquire);
    if (Cb != nullptr && Cb != Tombstone)
      ++N;
  }
  return N;
}

bool lfm::telemetry::dumpSignalInstalled() {
  return HandlerInstalled.load(std::memory_order_acquire);
}

void lfm::telemetry::dumpSignalFire() {
  for (unsigned I = 0; I < DumpSignalCapacity; ++I) {
    const DumpCallback Cb = Slots[I].load(std::memory_order_acquire);
    if (Cb != nullptr && Cb != Tombstone)
      Cb();
  }
}
