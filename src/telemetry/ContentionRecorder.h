//===- telemetry/ContentionRecorder.h - CAS contention sampling --*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sampled per-site CAS-contention recording plus a progress watchdog.
/// Three cooperating pieces, all storage in one page mapping from a
/// private PageAllocator (the instrumented allocator's §4.2.5 space meter
/// stays honest, and the recorder object's own cache line carries only the
/// fields every gate reads):
///
///  - Per-site distributions: roughly one loop execution in SamplePeriod
///    records its retries-per-op and wall time-in-loop into two sharded
///    log-linear histograms per ContentionSite (the LatencyRecorder
///    countdown discipline — a relaxed load/decrement/store on the
///    thread's cache-line-private slot, never an atomic RMW).
///
///  - A contention heat table: a CAS-claimed open-addressed table (the
///    heap profiler's site-table discipline) attributing sampled retry
///    mass to individual superblocks and size classes, with overflow
///    accounted in a dropped counter — never silent.
///
///  - Progress slots for the watchdog: a thread *inside a retry iteration*
///    (attempt >= 2 — already off the fast path) plain-stores its site,
///    attempt count, and loop-entry tick into its own slot and clears it
///    at loop exit. The watchdog (riding the StatsExporter thread) scans
///    the slots: a slot busy longer than StallNs whose attempt count still
///    advances is a retry storm (threads running but not succeeding); one
///    whose count froze is a stalled operation (a thread descheduled or
///    killed mid-loop — which, per the paper's progress guarantee, must
///    not have blocked anyone else). A thread delayed *between* retries is
///    indistinguishable from an idle one; storms are the primary signal.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TELEMETRY_CONTENTIONRECORDER_H
#define LFMALLOC_TELEMETRY_CONTENTIONRECORDER_H

#include "lfmalloc/SizeClasses.h"
#include "os/PageAllocator.h"
#include "support/CycleClock.h"
#include "support/Platform.h"
#include "support/ThreadRegistry.h"
#include "telemetry/ContentionSite.h"
#include "telemetry/LatencyHistogram.h"

#include <atomic>
#include <cstdint>

namespace lfm {
namespace telemetry {

/// Per-size-class retry attribution slots: one per small class plus one
/// shared bucket for loops with no class (descriptor/list machinery).
inline constexpr unsigned NumContentionClasses = NumSizeClasses + 1;

/// Thread slots for sampling countdowns and progress epochs (power of
/// two). Indices beyond this share slots; a shared countdown only perturbs
/// a gap draw, and a shared progress slot can only under-report a stall.
inline constexpr unsigned MaxContentionThreads = 256;

/// What one watchdog scan concluded (also the unit of the Stalls/Storms
/// counters).
struct WatchdogReport {
  unsigned BusySlots = 0; ///< Slots inside a retry loop at scan time.
  unsigned Stalls = 0;    ///< Busy past StallNs with a frozen attempt count.
  unsigned Storms = 0;    ///< Attempt count past StormRetries, or busy past
                          ///< StallNs and still retrying.
};

class ContentionRecorder {
public:
  /// Sentinel class for loops with no size-class attribution.
  static constexpr unsigned NoClass = ~0u;

  struct Options {
    /// Mean instrumented-loop executions between samples. 0 disables
    /// sampling (and, unless Watchdog is set, the whole recorder — no
    /// tables mapped, every hook one predicted branch); 1 samples every
    /// loop.
    std::uint64_t SamplePeriod = 0;
    /// Base seed for the per-thread gap RNGs; 0 keeps the default.
    std::uint64_t Seed = 0;
    /// Heat-table capacity in superblock entries (rounded up to a power
    /// of two, clamped to [64, 1 << 20]).
    std::uint32_t HeatCapacity = 512;
    /// Arm the progress watchdog (scanned from the StatsExporter thread
    /// or via contention.scan).
    bool Watchdog = false;
    /// A progress slot busy longer than this is flagged.
    std::uint64_t StallMs = 100;
    /// An attempt count past this is a retry storm regardless of age.
    std::uint64_t StormRetries = 1u << 20;
  };

  explicit ContentionRecorder(const Options &O);
  ~ContentionRecorder();
  ContentionRecorder(const ContentionRecorder &) = delete;
  ContentionRecorder &operator=(const ContentionRecorder &) = delete;

  /// False when sampling is off (period 0) or the tables could not be
  /// mapped — every hook is then a single predicted branch.
  bool enabled() const { return Tabs != nullptr; }

  std::uint64_t samplePeriod() const { return Period; }
  bool watchdogArmed() const { return WatchdogOn && Tabs != nullptr; }
  std::uint64_t stallMs() const { return StallNs / 1'000'000; }
  std::uint64_t stormRetries() const { return StormLimit; }

  /// Sampling gate at loop entry. \returns 0 for the common unsampled
  /// case, or a nonzero start tick to pass to loopEnd().
  std::uint64_t loopBegin() {
    Tables *T = Tabs;
    if (LFM_UNLIKELY(T == nullptr))
      return 0;
    ThreadState &S = T->Threads[threadIndex() & (MaxContentionThreads - 1)];
    const std::int64_t C = S.Countdown.load(std::memory_order_relaxed);
    if (LFM_LIKELY(C > 1)) {
      S.Countdown.store(C - 1, std::memory_order_relaxed);
      return 0;
    }
    S.Countdown.store(nextGap(S), std::memory_order_relaxed);
    // Watchdog-only mode (period 0, tables mapped for the progress slots):
    // nextGap parked the countdown at INT64_MAX, so this branch runs once
    // per thread and sampling stays off.
    if (LFM_UNLIKELY(Period == 0))
      return 0;
    const std::uint64_t Tick = cycleclock::now();
    return Tick != 0 ? Tick : 1; // 0 is the "not sampled" sentinel.
  }

  /// Publishes "this thread is retrying \p S" into its progress slot
  /// (plain relaxed stores on a thread-private line; called on attempt
  /// counts >= 2 only, i.e. already off the fast path). \p FirstRetryTick
  /// is the caller-kept tick of its first retry, so a slot reclaimed by an
  /// inner nested loop and re-taken by the outer one keeps the outer
  /// loop's true age.
  void retryTick(ContentionSite S, std::uint64_t Attempts,
                 std::uint64_t FirstRetryTick);

  /// Clears the calling thread's progress slot (loop exit).
  void retryDone();

  /// Completes a sampled loop: files Attempts - 1 retries and the elapsed
  /// time since \p StartTick under \p S, and attributes nonzero retries to
  /// \p Class / superblock \p Sb in the heat table.
  void loopEnd(ContentionSite S, std::uint64_t StartTick,
               std::uint64_t Attempts, unsigned Class, const void *Sb);

  /// Files one pre-measured sample directly (export/test entry — the unit
  /// tests pin the bucket math without racing real loops).
  void recordSample(ContentionSite S, std::uint64_t Retries,
                    std::uint64_t LoopNs, unsigned Class, const void *Sb);

  /// One watchdog pass over the progress slots. Diagnoses flagged slots
  /// to \p DiagFd (async-signal-safe FdWriter text; pass -1 to scan
  /// silently) and bumps the scan/stall/storm counters. Runs regardless
  /// of the Watchdog option so tests and the contention.scan ctl key can
  /// drive it explicitly; the StatsExporter ride checks watchdogArmed().
  WatchdogReport watchdogScan(int DiagFd);

  /// Merges site \p S's retries-per-op histogram shards into \p Out.
  void snapshotRetries(ContentionSite S, LatencyHistogramSnapshot &Out) const;
  /// Merges site \p S's time-in-loop histogram shards into \p Out.
  void snapshotLoopNs(ContentionSite S, LatencyHistogramSnapshot &Out) const;

  /// Total sampled loop executions.
  std::uint64_t samples() const {
    const Tables *T = Tabs;
    return T ? T->Samples.load(std::memory_order_relaxed) : 0;
  }

  /// Sampled retry mass attributed to \p Class (NumSizeClasses = no
  /// class).
  std::uint64_t classRetries(unsigned Class) const {
    const Tables *T = Tabs;
    return (T && Class < NumContentionClasses)
               ? T->ClassRetries[Class].load(std::memory_order_relaxed)
               : 0;
  }

  /// Heat-table samples dropped because every probe in the window was
  /// taken (overflow is accounted, never silent).
  std::uint64_t heatDropped() const {
    const Tables *T = Tabs;
    return T ? T->HeatDropped.load(std::memory_order_relaxed) : 0;
  }

  /// Distinct superblocks currently claimed in the heat table.
  std::uint64_t heatEntries() const {
    const Tables *T = Tabs;
    return T ? T->HeatEntries.load(std::memory_order_relaxed) : 0;
  }

  std::uint32_t heatCapacity() const { return HeatCap; }

  /// Extracts the \p K hottest superblocks by sampled retry mass into
  /// \p Out (descending). \returns entries written.
  unsigned topHeat(ContentionHeatEntry *Out, unsigned K) const;

  std::uint64_t watchdogScans() const {
    const Tables *T = Tabs;
    return T ? T->WatchdogScans.load(std::memory_order_relaxed) : 0;
  }
  std::uint64_t watchdogStalls() const {
    const Tables *T = Tabs;
    return T ? T->WatchdogStalls.load(std::memory_order_relaxed) : 0;
  }
  std::uint64_t watchdogStorms() const {
    const Tables *T = Tabs;
    return T ? T->WatchdogStorms.load(std::memory_order_relaxed) : 0;
  }

private:
  struct alignas(CacheLineSize) ThreadState {
    std::atomic<std::int64_t> Countdown{0};
    std::atomic<std::uint64_t> Rng{0};
  };

  /// Watchdog progress slot. Written with owner-thread plain relaxed
  /// stores only (the countdown discipline — a lock-prefixed RMW inside a
  /// retry loop would add contention to the very thing being measured);
  /// the watchdog reads racily, which can only mis-age one slot by one
  /// transition. SitePlus1 == 0 means idle.
  struct alignas(CacheLineSize) ProgressSlot {
    std::atomic<std::uint32_t> SitePlus1{0};
    std::atomic<std::uint64_t> Attempts{0};
    std::atomic<std::uint64_t> StartTick{0};
    std::atomic<std::uint64_t> Epoch{0}; ///< Bumped on every take/release.
  };

  /// One heat-table row. Sb claimed by CAS from 0; Retries accumulates
  /// with fetch-add; Class is a last-writer-wins annotation.
  struct HeatSlot {
    std::atomic<std::uint64_t> Sb{0};
    std::atomic<std::uint64_t> Retries{0};
    std::atomic<std::uint32_t> Class{0};
  };

  struct Tables {
    LatencyHistogram Retries[NumContentionSites];
    LatencyHistogram LoopNs[NumContentionSites];
    std::atomic<std::uint64_t> ClassRetries[NumContentionClasses];
    ThreadState Threads[MaxContentionThreads];
    ProgressSlot Progress[MaxContentionThreads];
    alignas(CacheLineSize) std::atomic<std::uint64_t> Samples;
    std::atomic<std::uint64_t> HeatDropped;
    std::atomic<std::uint64_t> HeatEntries;
    std::atomic<std::uint64_t> WatchdogScans;
    std::atomic<std::uint64_t> WatchdogStalls;
    std::atomic<std::uint64_t> WatchdogStorms;
    /// Watchdog-private last-seen state per slot (exporter thread only).
    std::uint64_t LastEpoch[MaxContentionThreads];
    std::uint64_t LastAttempts[MaxContentionThreads];
    /// The heat table follows in the same mapping ([HeatCap]).
    HeatSlot Heat[1];
  };

  std::int64_t nextGap(ThreadState &S);
  void heatAdd(const void *Sb, unsigned Class, std::uint64_t Retries);

  std::uint64_t Period = 0;
  std::uint64_t Seed = 0;
  std::uint32_t HeatCap = 0;   ///< Power of two.
  bool WatchdogOn = false;
  std::uint64_t StallNs = 0;
  std::uint64_t StormLimit = 0;
  Tables *Tabs = nullptr;
  std::size_t MappedBytes = 0;
  PageAllocator TablePages; ///< Private: keeps the space meter honest.
};

} // namespace telemetry
} // namespace lfm

#endif // LFMALLOC_TELEMETRY_CONTENTIONRECORDER_H
