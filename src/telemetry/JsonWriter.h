//===- telemetry/JsonWriter.h - Minimal streaming JSON writer ----*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny streaming JSON emitter over std::FILE*. Just enough structure
/// (objects, arrays, comma bookkeeping, string escaping) to guarantee the
/// metrics and trace exports are well-formed without pulling a JSON
/// dependency into an allocator.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TELEMETRY_JSONWRITER_H
#define LFMALLOC_TELEMETRY_JSONWRITER_H

#include <cinttypes>
#include <cstdint>
#include <cstdio>

namespace lfm {
namespace telemetry {

/// Streaming JSON writer. The caller is responsible for balanced
/// begin/end calls; the writer handles commas and escaping.
class JsonWriter {
public:
  explicit JsonWriter(std::FILE *Out) : Out(Out) {}

  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  /// Starts "key": inside an object; follow with a value or begin call.
  void key(const char *K) {
    comma();
    string(K);
    std::fputc(':', Out);
    JustWroteKey = true;
  }

  void value(std::uint64_t V) {
    comma();
    std::fprintf(Out, "%" PRIu64, V);
  }

  void value(std::int64_t V) {
    comma();
    std::fprintf(Out, "%" PRId64, V);
  }

  void value(double V) {
    comma();
    std::fprintf(Out, "%.6g", V);
  }

  void value(bool V) {
    comma();
    std::fputs(V ? "true" : "false", Out);
  }

  void value(const char *V) {
    comma();
    string(V);
  }

  /// Convenience: key + integer value.
  void field(const char *K, std::uint64_t V) {
    key(K);
    value(V);
  }

  void field(const char *K, std::int64_t V) {
    key(K);
    value(V);
  }

  void field(const char *K, bool V) {
    key(K);
    value(V);
  }

  void field(const char *K, const char *V) {
    key(K);
    value(V);
  }

  void fieldDouble(const char *K, double V) {
    key(K);
    value(V);
  }

private:
  void open(char C) {
    comma();
    std::fputc(C, Out);
    NeedComma = false;
  }

  void close(char C) {
    std::fputc(C, Out);
    NeedComma = true;
    JustWroteKey = false;
  }

  void comma() {
    if (JustWroteKey) {
      JustWroteKey = false;
      return; // Value directly after its key: no comma.
    }
    if (NeedComma)
      std::fputc(',', Out);
    NeedComma = true;
  }

  void string(const char *S) {
    std::fputc('"', Out);
    for (; *S; ++S) {
      const unsigned char C = static_cast<unsigned char>(*S);
      switch (C) {
      case '"':
        std::fputs("\\\"", Out);
        break;
      case '\\':
        std::fputs("\\\\", Out);
        break;
      case '\n':
        std::fputs("\\n", Out);
        break;
      case '\t':
        std::fputs("\\t", Out);
        break;
      case '\r':
        std::fputs("\\r", Out);
        break;
      default:
        if (C < 0x20)
          std::fprintf(Out, "\\u%04x", C);
        else
          std::fputc(C, Out);
      }
    }
    std::fputc('"', Out);
  }

  std::FILE *Out;
  bool NeedComma = false;
  bool JustWroteKey = false;
};

} // namespace telemetry
} // namespace lfm

#endif // LFMALLOC_TELEMETRY_JSONWRITER_H
