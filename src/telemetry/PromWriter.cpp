//===- telemetry/PromWriter.cpp - Prometheus text exposition --------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "telemetry/PromWriter.h"

#include "support/LogBuckets.h"

using namespace lfm;
using namespace lfm::telemetry;

namespace {

constexpr const char *Ns = "lf_malloc_";

void help(profiling::FdWriter &W, const char *Name, const char *Text,
          const char *Type) {
  W.str("# HELP ");
  W.str(Ns);
  W.str(Name);
  W.ch(' ');
  W.str(Text);
  W.ch('\n');
  W.str("# TYPE ");
  W.str(Ns);
  W.str(Name);
  W.ch(' ');
  W.str(Type);
  W.ch('\n');
}

void sample(profiling::FdWriter &W, const char *Name, std::uint64_t V) {
  W.str(Ns);
  W.str(Name);
  W.ch(' ');
  W.dec(V);
  W.ch('\n');
}

void counter(profiling::FdWriter &W, const char *Name, const char *Text,
             std::uint64_t V) {
  // One-series families: HELP/TYPE immediately followed by the sample.
  W.str("# HELP ");
  W.str(Ns);
  W.str(Name);
  W.str("_total ");
  W.str(Text);
  W.ch('\n');
  W.str("# TYPE ");
  W.str(Ns);
  W.str(Name);
  W.str("_total counter\n");
  W.str(Ns);
  W.str(Name);
  W.str("_total ");
  W.dec(V);
  W.ch('\n');
}

void gauge(profiling::FdWriter &W, const char *Name, const char *Text,
           std::uint64_t V) {
  help(W, Name, Text, "gauge");
  sample(W, Name, V);
}

} // namespace

void lfm::telemetry::promWriteMetrics(profiling::FdWriter &W,
                                      const MetricsSnapshot &Snap) {
  // Operation counters. Prometheus names must be stable forever, so they
  // reuse the exact counterName() identifiers the JSON schema exports.
  for (unsigned C = 0; C < NumCounters; ++C)
    counter(W, counterName(static_cast<Counter>(C)),
            "lfmalloc operation counter.", Snap.Counters[C]);

  // Space meter (§4.2.5).
  gauge(W, "space_bytes_in_use", "Bytes currently mapped.",
        Snap.Space.BytesInUse);
  gauge(W, "space_peak_bytes", "High-water mark of mapped bytes.",
        Snap.Space.PeakBytes);
  counter(W, "space_map_calls", "Successful OS map calls.",
          Snap.Space.MapCalls);
  counter(W, "space_unmap_calls", "OS unmap calls.", Snap.Space.UnmapCalls);
  counter(W, "space_decommit_calls", "Successful decommit calls.",
          Snap.Space.DecommitCalls);
  counter(W, "space_bytes_decommitted", "Total bytes ever decommitted.",
          Snap.Space.BytesDecommitted);
  counter(W, "space_map_retries", "Map attempts retried after failure.",
          Snap.Space.MapRetries);
  counter(W, "space_map_failures", "Map calls failed after all retries.",
          Snap.Space.MapFailures);
  gauge(W, "space_bytes_reserved", "Address space reserved but uncommitted.",
        Snap.Space.BytesReserved);
  counter(W, "space_reserve_calls", "Successful OS reserve calls.",
          Snap.Space.ReserveCalls);

  // Subsystem gauges.
  gauge(W, "cached_superblocks", "Superblocks idle in the cache.",
        Snap.CachedSuperblocks);
  gauge(W, "descriptors_minted", "Descriptors ever created.",
        Snap.DescriptorsMinted);
  gauge(W, "hazard_retired", "Nodes awaiting hazard reclamation.",
        Snap.HazardRetired);
  gauge(W, "hazard_scans", "Hazard-pointer scan passes.", Snap.HazardScans);
  gauge(W, "hazard_reclaims", "Nodes freed by hazard scans.",
        Snap.HazardReclaims);
  gauge(W, "trace_events_emitted", "Trace events ever emitted.",
        Snap.TraceEventsEmitted);
  gauge(W, "trace_events_overwritten", "Trace events lost to wraparound.",
        Snap.TraceEventsOverwritten);
  gauge(W, "alloctrace_recording", "1 while a flight recording is active.",
        Snap.AllocTraceRecording ? 1 : 0);
  counter(W, "alloctrace_ops", "Flight-recorder ops durably encoded.",
          Snap.AllocTraceOps);
  counter(W, "alloctrace_dropped",
          "Flight-recorder ops lost to buffer exhaustion.",
          Snap.AllocTraceDropped);
  gauge(W, "retained_bytes", "Bytes idle in the superblock cache.",
        Snap.RetainedBytes);
  gauge(W, "decommitted_superblocks", "Cached superblocks decommitted.",
        Snap.DecommittedSuperblocks);
  gauge(W, "parked_hyperblocks", "Fully-free hyperblocks parked.",
        Snap.ParkedHyperblocks);
  gauge(W, "retain_max_bytes", "Retention watermark in force.",
        Snap.RetainMaxBytes);
  gauge(W, "tcache_enabled", "1 while the thread-cache layer is active.",
        Snap.TcacheEnabled ? 1 : 0);
  gauge(W, "tcache_caches_minted", "Thread-cache slabs ever mapped.",
        Snap.TcacheCachesMinted);
  gauge(W, "tcache_caches_parked", "Thread caches awaiting adoption.",
        Snap.TcacheCachesParked);
  gauge(W, "tcache_magazine_blocks", "Blocks resident in magazines.",
        Snap.TcacheMagazineBlocks);
  gauge(W, "tcache_depot_blocks", "Blocks resident in class depots.",
        Snap.TcacheDepotBlocks);
  gauge(W, "large_backend_buddy",
        "1 while the buddy large-object backend is selected.",
        Snap.LargeBackendBuddy ? 1 : 0);
  gauge(W, "buddy_spans_reserved", "Buddy spans currently reserved.",
        Snap.BuddySpansReserved);
  gauge(W, "buddy_span_bytes", "Reserved address space per buddy span.",
        Snap.BuddySpanBytes);
  gauge(W, "buddy_bytes_reserved", "Address space held by buddy spans.",
        Snap.BuddyBytesReserved);
  gauge(W, "buddy_bytes_committed", "Resident bytes inside buddy spans.",
        Snap.BuddyBytesCommitted);
  gauge(W, "buddy_bytes_allocated", "Bytes handed out by the buddy backend.",
        Snap.BuddyBytesAllocated);
  gauge(W, "buddy_free_committed_bytes",
        "Committed bytes idle in the buddy free forest.",
        Snap.BuddyFreeCommittedBytes);

  // Configuration echo.
  gauge(W, "heaps", "Processor heaps per size class.", Snap.Heaps);
  gauge(W, "size_classes", "Size classes in use.", Snap.Classes);
  gauge(W, "superblock_bytes", "Superblock size.", Snap.SuperblockBytes);
  gauge(W, "hyperblock_bytes", "Hyperblock size.", Snap.HyperblockBytes);
  gauge(W, "telemetry_compiled", "1 when built with LFM_TELEMETRY=1.",
        Snap.TelemetryCompiled ? 1 : 0);
  gauge(W, "latency_sample_period",
        "Mean operations between latency samples (0 = off).",
        Snap.LatencySamplePeriod);

  // Contention-and-progress observability (lfm-metrics-v3). The per-site
  // histograms are a separate family (promWriteCasRetriesSeries); these
  // are the scalar health indicators.
  gauge(W, "contention_sample_period",
        "Mean retry-loop executions between contention samples (0 = off).",
        Snap.ContentionSamplePeriod);
  counter(W, "contention_samples", "Retry-loop executions sampled.",
          Snap.ContentionSamples);
  gauge(W, "contention_heat_entries",
        "Distinct superblocks claimed in the contention heat table.",
        Snap.ContentionHeatEntries);
  counter(W, "contention_heat_dropped",
          "Heat-table attributions dropped to probe-window overflow.",
          Snap.ContentionHeatDropped);
  gauge(W, "contention_watchdog_armed",
        "1 while the progress watchdog rides the stats exporter.",
        Snap.WatchdogArmed ? 1 : 0);
  counter(W, "contention_watchdog_scans", "Progress-watchdog passes run.",
          Snap.WatchdogScans);
  counter(W, "contention_watchdog_stalls",
          "Slots flagged as stalled operations (frozen mid-loop).",
          Snap.WatchdogStalls);
  counter(W, "contention_watchdog_storms",
          "Slots flagged as retry storms (retrying without succeeding).",
          Snap.WatchdogStorms);

  // Shared-memory stats segment (lfm-metrics-v5).
  gauge(W, "shmstats_active",
        "1 while an lfm-shmstats-v1 segment is mapped.",
        Snap.ShmStatsActive ? 1 : 0);
  counter(W, "shmstats_epoch",
          "Epoch of the last frame published to the shared segment.",
          Snap.ShmStatsEpoch);
  counter(W, "shmstats_publishes",
          "Frames published to the shared segment.",
          Snap.ShmStatsPublishes);
  gauge(W, "shmstats_segment_bytes",
        "Mapped size of the shared stats segment.", Snap.ShmStatsBytes);
}

void lfm::telemetry::promWriteLatencyHelp(profiling::FdWriter &W) {
  help(W, "latency_ns",
       "Sampled malloc/free operation latency by outcome path.",
       "histogram");
}

namespace {

/// Shared body of every labeled histogram family: sparse cumulative
/// buckets (only non-empty, always +Inf), _sum, _count.
void labeledHistogram(profiling::FdWriter &W, const char *Family,
                      const char *Label, const char *LabelValue,
                      const LatencyHistogramSnapshot &H) {
  std::uint64_t Cumulative = 0;
  for (unsigned I = 0; I < logbuckets::NumBuckets; ++I) {
    if (H.Buckets[I] == 0)
      continue; // Sparse exposition: empty buckets carry no information.
    Cumulative += H.Buckets[I];
    W.str(Ns);
    W.str(Family);
    W.str("_bucket{");
    W.str(Label);
    W.str("=\"");
    W.str(LabelValue);
    W.str("\",le=\"");
    // Inclusive integer bound: our buckets are [lower, upper), le is <=.
    W.dec(logbuckets::bucketUpper(I) - 1);
    W.str("\"} ");
    W.dec(Cumulative);
    W.ch('\n');
  }
  W.str(Ns);
  W.str(Family);
  W.str("_bucket{");
  W.str(Label);
  W.str("=\"");
  W.str(LabelValue);
  W.str("\",le=\"+Inf\"} ");
  W.dec(H.Count);
  W.ch('\n');
  W.str(Ns);
  W.str(Family);
  W.str("_sum{");
  W.str(Label);
  W.str("=\"");
  W.str(LabelValue);
  W.str("\"} ");
  W.dec(H.SumNs);
  W.ch('\n');
  W.str(Ns);
  W.str(Family);
  W.str("_count{");
  W.str(Label);
  W.str("=\"");
  W.str(LabelValue);
  W.str("\"} ");
  W.dec(H.Count);
  W.ch('\n');
}

} // namespace

void lfm::telemetry::promWriteLatencySeries(profiling::FdWriter &W,
                                            const char *PathName,
                                            const LatencyHistogramSnapshot &H) {
  labeledHistogram(W, "latency_ns", "path", PathName, H);
}

void lfm::telemetry::promWriteCasRetriesHelp(profiling::FdWriter &W) {
  help(W, "cas_retries",
       "Sampled CAS retries per retry-loop execution, by site.",
       "histogram");
}

void lfm::telemetry::promWriteCasRetriesSeries(
    profiling::FdWriter &W, const char *SiteName,
    const LatencyHistogramSnapshot &H) {
  labeledHistogram(W, "cas_retries", "site", SiteName, H);
}

void lfm::telemetry::promWriteCasLoopNsHelp(profiling::FdWriter &W) {
  help(W, "cas_loop_ns",
       "Sampled wall time inside a CAS retry loop, by site.", "histogram");
}

void lfm::telemetry::promWriteCasLoopNsSeries(
    profiling::FdWriter &W, const char *SiteName,
    const LatencyHistogramSnapshot &H) {
  labeledHistogram(W, "cas_loop_ns", "site", SiteName, H);
}
