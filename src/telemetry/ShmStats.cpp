//===- telemetry/ShmStats.cpp - Shared-memory stats publication -----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "telemetry/ShmStats.h"

#if LFM_TELEMETRY

#include "telemetry/ContentionSite.h"
#include "telemetry/Counters.h"
#include "telemetry/LatencyPath.h"
#include "telemetry/MetricsSnapshot.h"
#include "telemetry/ShmStatsFormat.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/prctl.h>
#include <unistd.h>

using namespace lfm;
using namespace lfm::telemetry;

// The live counts must fit the format's reserved capacities; growing past
// them is a format version bump, caught here at compile time rather than
// by a corrupted segment.
static_assert(NumCounters <= shmstats::MaxCounters);
static_assert(NumLatencyPaths <= shmstats::MaxLatencyPaths);
static_assert(NumContentionSites <= shmstats::MaxContentionSites);
static_assert(NumSizeClasses + 1 <= shmstats::MaxClasses);
static_assert(ContentionTopK <= shmstats::MaxHeatTopK);

namespace {

constexpr std::size_t PathCap = 4096;

// Process-wide singleton state. Seg is written once by open() and read by
// publish()/close(); the acquire/release pair makes a segment opened by
// one thread publishable from another (shim constructor vs exporter).
std::atomic<shmstats::Segment *> Seg{nullptr};
int SegFd = -1;
char SegPath[PathCap] = "";
std::atomic<std::uint64_t> LastEpoch{0};
std::atomic<std::uint64_t> PublishCount{0};
// publish() callers can race (exporter tick vs SIGUSR2 vs ctl action);
// the seqlock is single-writer, so overlapping publishers must be
// excluded. A failed trylock skips the publish — the next tick carries
// fresher data anyway. Cold path only; never malloc/free.
std::atomic<bool> Publishing{false};

std::uint64_t wallNs() {
  timespec Ts{};
  clock_gettime(CLOCK_REALTIME, &Ts);
  return static_cast<std::uint64_t>(Ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(Ts.tv_nsec);
}

std::uint64_t monoNs() {
  timespec Ts{};
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<std::uint64_t>(Ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(Ts.tv_nsec);
}

void putName(char (&Slot)[shmstats::NameCap], const char *Name) {
  std::strncpy(Slot, Name, shmstats::NameCap - 1);
  Slot[shmstats::NameCap - 1] = '\0';
}

/// Writes the header and name tables. Runs once, before any reader can
/// know the segment exists, so plain stores suffice.
void initSegment(shmstats::Segment &S) {
  shmstats::SegmentHeader &H = S.H;
  H.MagicV = shmstats::Magic;
  H.VersionV = shmstats::Version;
  H.LayoutChecksum = shmstats::layoutChecksum();
  H.HeaderBytes = sizeof(shmstats::SegmentHeader);
  H.NamesBytes = sizeof(shmstats::NameTables);
  H.FrameBytes = sizeof(shmstats::Frame);
  H.FrameCountV = shmstats::FrameCount;
  H.NameCapV = shmstats::NameCap;
  H.ActiveFrame = 0;
  H.NumCounters = NumCounters;
  H.NumLatencyPaths = NumLatencyPaths;
  H.NumContentionSites = NumContentionSites;
  H.NumClasses = NumSizeClasses + 1;
  H.HeatTopK = ContentionTopK;
  H.Pid = static_cast<std::uint32_t>(::getpid());
  H.StartWallNs = wallNs();
  H.Publishes = 0;
  for (unsigned C = 0; C < NumCounters; ++C)
    putName(S.N.CounterNames[C], counterName(static_cast<Counter>(C)));
  for (unsigned P = 0; P < NumLatencyPaths; ++P)
    putName(S.N.LatencyPathNames[P],
            latencyPathName(static_cast<LatencyPath>(P)));
  for (unsigned C = 0; C < NumContentionSites; ++C)
    putName(S.N.ContentionSiteNames[C],
            contentionSiteName(static_cast<ContentionSite>(C)));
}

/// Flattens a MetricsSnapshot into the wire payload. Plain stores into
/// the (seqlock-protected) frame; field order mirrors the JSON document.
void fillPayload(shmstats::Payload &P, const MetricsSnapshot &Snap) {
  for (unsigned C = 0; C < NumCounters; ++C)
    P.Counters[C] = Snap.Counters[C];
  P.SpaceBytesInUse = Snap.Space.BytesInUse;
  P.SpacePeakBytes = Snap.Space.PeakBytes;
  P.SpaceMapCalls = Snap.Space.MapCalls;
  P.SpaceUnmapCalls = Snap.Space.UnmapCalls;
  P.SpaceDecommitCalls = Snap.Space.DecommitCalls;
  P.SpaceBytesDecommitted = Snap.Space.BytesDecommitted;
  P.SpaceMapRetries = Snap.Space.MapRetries;
  P.SpaceMapFailures = Snap.Space.MapFailures;
  P.SpaceBytesReserved = Snap.Space.BytesReserved;
  P.SpaceReserveCalls = Snap.Space.ReserveCalls;
  P.CachedSuperblocks = Snap.CachedSuperblocks;
  P.DescriptorsMinted = Snap.DescriptorsMinted;
  P.HazardRetired = Snap.HazardRetired;
  P.HazardScans = Snap.HazardScans;
  P.HazardReclaims = Snap.HazardReclaims;
  P.RetainedBytes = Snap.RetainedBytes;
  P.DecommittedSuperblocks = Snap.DecommittedSuperblocks;
  P.ParkedHyperblocks = Snap.ParkedHyperblocks;
  P.RetainMaxBytes = Snap.RetainMaxBytes;
  P.RetainDecayMs = static_cast<std::uint64_t>(Snap.RetainDecayMs);
  P.TraceEventsEmitted = Snap.TraceEventsEmitted;
  P.TraceEventsOverwritten = Snap.TraceEventsOverwritten;
  P.AllocTraceRecording = Snap.AllocTraceRecording ? 1 : 0;
  P.AllocTraceOps = Snap.AllocTraceOps;
  P.AllocTraceDropped = Snap.AllocTraceDropped;
  P.TcacheEnabled = Snap.TcacheEnabled ? 1 : 0;
  P.TcacheMagSize = Snap.TcacheMagSize;
  P.TcacheCachesMinted = Snap.TcacheCachesMinted;
  P.TcacheCachesParked = Snap.TcacheCachesParked;
  P.TcacheMagazineBlocks = Snap.TcacheMagazineBlocks;
  P.TcacheDepotBlocks = Snap.TcacheDepotBlocks;
  P.LargeBackendBuddy = Snap.LargeBackendBuddy ? 1 : 0;
  P.BuddySpansReserved = Snap.BuddySpansReserved;
  P.BuddySpanBytes = Snap.BuddySpanBytes;
  P.BuddyBytesReserved = Snap.BuddyBytesReserved;
  P.BuddyBytesCommitted = Snap.BuddyBytesCommitted;
  P.BuddyBytesAllocated = Snap.BuddyBytesAllocated;
  P.BuddyFreeCommittedBytes = Snap.BuddyFreeCommittedBytes;
  P.LatencyEnabled = Snap.LatencyEnabled ? 1 : 0;
  P.LatencySamplePeriod = Snap.LatencySamplePeriod;
  for (unsigned I = 0; I < NumLatencyPaths; ++I) {
    const LatencyPathStats &S = Snap.Latency[I];
    shmstats::PathStats &D = P.Latency[I];
    D.Count = S.Count;
    D.SumNs = S.SumNs;
    D.MaxNs = S.MaxNs;
    D.P50UpperNs = S.P50UpperNs;
    D.P99UpperNs = S.P99UpperNs;
    D.P999UpperNs = S.P999UpperNs;
  }
  for (unsigned C = 0; C <= NumSizeClasses; ++C) {
    const LatencyClassStats &S = Snap.LatencyClasses[C];
    shmstats::ClassStats &D = P.LatencyClasses[C];
    D.Count = S.Count;
    D.SumNs = S.SumNs;
    D.MaxNs = S.MaxNs;
  }
  P.ContentionEnabled = Snap.ContentionEnabled ? 1 : 0;
  P.ContentionSamplePeriod = Snap.ContentionSamplePeriod;
  P.ContentionSamples = Snap.ContentionSamples;
  for (unsigned I = 0; I < NumContentionSites; ++I) {
    const ContentionSiteStats &S = Snap.Contention[I];
    shmstats::SiteStats &D = P.Contention[I];
    D.Count = S.Count;
    D.RetriesSum = S.RetriesSum;
    D.RetriesMax = S.RetriesMax;
    D.RetriesP50 = S.RetriesP50;
    D.RetriesP99 = S.RetriesP99;
    D.LoopSumNs = S.LoopSumNs;
    D.LoopMaxNs = S.LoopMaxNs;
    D.LoopP50UpperNs = S.LoopP50UpperNs;
    D.LoopP99UpperNs = S.LoopP99UpperNs;
  }
  for (unsigned C = 0; C <= NumSizeClasses; ++C)
    P.ContentionClassRetries[C] = Snap.ContentionClassRetries[C];
  for (unsigned I = 0; I < ContentionTopK; ++I) {
    const ContentionHeatEntry &S = Snap.ContentionHeat[I];
    shmstats::HeatEntry &D = P.ContentionHeat[I];
    D.Sb = S.Sb;
    D.Retries = S.Retries;
    D.Class = S.Class;
  }
  P.ContentionHeatCount = Snap.ContentionHeatCount;
  P.ContentionHeatEntries = Snap.ContentionHeatEntries;
  P.ContentionHeatCapacity = Snap.ContentionHeatCapacity;
  P.ContentionHeatDropped = Snap.ContentionHeatDropped;
  P.WatchdogArmed = Snap.WatchdogArmed ? 1 : 0;
  P.WatchdogScans = Snap.WatchdogScans;
  P.WatchdogStalls = Snap.WatchdogStalls;
  P.WatchdogStorms = Snap.WatchdogStorms;
  P.Heaps = Snap.Heaps;
  P.Classes = Snap.Classes;
  P.SuperblockBytes = Snap.SuperblockBytes;
  P.HyperblockBytes = Snap.HyperblockBytes;
  P.PartialPolicyFifo = Snap.PartialPolicyFifo ? 1 : 0;
  P.StatsEnabled = Snap.StatsEnabled ? 1 : 0;
  P.TraceEnabled = Snap.TraceEnabled ? 1 : 0;
  P.TelemetryCompiled = Snap.TelemetryCompiled ? 1 : 0;
}

} // namespace

int ShmStats::open(const char *Spec) {
  if (Spec == nullptr || *Spec == '\0')
    return EINVAL;
  if (Seg.load(std::memory_order_acquire) != nullptr)
    return EALREADY;

  const bool Anon = std::strcmp(Spec, "1") == 0 ||
                    std::strcmp(Spec, "auto") == 0 ||
                    std::strcmp(Spec, "memfd") == 0;
  int Fd;
  if (Anon) {
    Fd = ::memfd_create("lfm-shmstats", MFD_CLOEXEC);
  } else {
    if (std::strlen(Spec) >= PathCap)
      return EINVAL;
    Fd = ::open(Spec, O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  }
  if (Fd < 0)
    return errno != 0 ? errno : EIO;
  if (::ftruncate(Fd, static_cast<off_t>(shmstats::SegmentBytes)) != 0) {
    const int Rc = errno != 0 ? errno : EIO;
    ::close(Fd);
    return Rc;
  }
  void *Map = ::mmap(nullptr, shmstats::SegmentBytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED, Fd, 0);
  if (Map == MAP_FAILED) {
    const int Rc = errno != 0 ? errno : EIO;
    ::close(Fd);
    return Rc;
  }

#if defined(PR_SET_VMA) && defined(PR_SET_VMA_ANON_NAME)
  // Name the mapping for /proc/<pid>/maps readers. The kernel only names
  // private anonymous mappings, so this fails (EINVAL/EBADF) for our
  // shared file/memfd mapping on most kernels — harmless: memfd mappings
  // already show as "/memfd:lfm-shmstats" and file mappings by path.
  (void)::prctl(PR_SET_VMA, PR_SET_VMA_ANON_NAME,
                reinterpret_cast<unsigned long>(Map), shmstats::SegmentBytes,
                reinterpret_cast<unsigned long>("lfm-shmstats"));
#endif
#ifdef MADV_DODUMP
  // Shared mappings are included in core dumps under the default
  // coredump_filter; make the intent explicit anyway so a tightened
  // filter still carries the final frame into the post-mortem.
  (void)::madvise(Map, shmstats::SegmentBytes, MADV_DODUMP);
#endif

  auto *S = static_cast<shmstats::Segment *>(Map);
  initSegment(*S);
  if (Anon) {
    // Record the discovery handle: lfm-top --pid resolves the memfd by
    // scanning /proc/<pid>/fd for the "memfd:lfm-shmstats" link.
    std::snprintf(SegPath, sizeof(SegPath), "memfd:%d", Fd);
  } else {
    std::memcpy(SegPath, Spec, std::strlen(Spec) + 1);
  }
  SegFd = Fd;
  LastEpoch.store(0, std::memory_order_relaxed);
  PublishCount.store(0, std::memory_order_relaxed);
  Seg.store(S, std::memory_order_release);
  return 0;
}

bool ShmStats::active() {
  return Seg.load(std::memory_order_acquire) != nullptr;
}

void ShmStats::publish(const MetricsSnapshot &Snap) {
  shmstats::Segment *S = Seg.load(std::memory_order_acquire);
  if (S == nullptr)
    return;
  if (Publishing.exchange(true, std::memory_order_acquire))
    return; // Another publisher is mid-frame; its data is fresh enough.
  const std::uint32_t Next = (S->H.ActiveFrame + 1) % shmstats::FrameCount;
  shmstats::Frame &F = S->Frames[Next];
  const std::uint64_t Seq0 = F.Seq;
  // Single-writer seqlock, same recipe as the trace rings: odd while the
  // frame is inconsistent, plain payload stores between release fences,
  // even when stable. No lock-prefixed RMW anywhere on this path.
  __atomic_store_n(&F.Seq, Seq0 + 1, __ATOMIC_RELAXED);
  std::atomic_thread_fence(std::memory_order_release);
  const std::uint64_t Epoch =
      LastEpoch.load(std::memory_order_relaxed) + 1;
  F.Epoch = Epoch;
  F.WallNs = wallNs();
  F.MonoNs = monoNs();
  fillPayload(F.P, Snap);
  std::atomic_thread_fence(std::memory_order_release);
  __atomic_store_n(&F.Seq, Seq0 + 2, __ATOMIC_RELEASE);
  __atomic_store_n(&S->H.ActiveFrame, Next, __ATOMIC_RELEASE);
  __atomic_store_n(&S->H.Publishes, Epoch, __ATOMIC_RELEASE);
  LastEpoch.store(Epoch, std::memory_order_relaxed);
  PublishCount.store(Epoch, std::memory_order_relaxed);
  Publishing.store(false, std::memory_order_release);
}

std::uint64_t ShmStats::epoch() {
  return LastEpoch.load(std::memory_order_relaxed);
}

std::uint64_t ShmStats::publishes() {
  return PublishCount.load(std::memory_order_relaxed);
}

std::uint64_t ShmStats::bytes() {
  return active() ? shmstats::SegmentBytes : 0;
}

const char *ShmStats::path() {
  return active() ? SegPath : "";
}

void ShmStats::close() {
  shmstats::Segment *S = Seg.exchange(nullptr, std::memory_order_acq_rel);
  if (S == nullptr)
    return;
  ::munmap(S, shmstats::SegmentBytes);
  if (SegFd >= 0)
    ::close(SegFd);
  SegFd = -1;
  SegPath[0] = '\0';
  LastEpoch.store(0, std::memory_order_relaxed);
  PublishCount.store(0, std::memory_order_relaxed);
}

#endif // LFM_TELEMETRY
