//===- telemetry/PromWriter.h - Prometheus text exposition -------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prometheus text exposition (format 0.0.4) for the allocator's metrics:
/// every counter as `lf_malloc_<name>_total`, space and subsystem gauges
/// as `lf_malloc_*`, and the sampled latency histograms as one classic
/// histogram family `lf_malloc_latency_ns` with a `path` label per outcome
/// path — sparse cumulative `_bucket{le=...}` series (only non-empty
/// buckets, always `+Inf`), `_sum` and `_count`.
///
/// `le` bounds are the *inclusive* integer upper bounds of the log-linear
/// buckets (support/LogBuckets.h upper bound minus one — Prometheus `le`
/// is <=, our buckets are half-open), so a server-side
/// histogram_quantile() lands within the same 12.5% bucket resolution the
/// in-process quantiles report.
///
/// Everything writes through the async-signal-safe FdWriter — no stdio, no
/// floating point, no allocation — so the same code serves
/// lf_malloc_ctl("dump.prometheus"), the SIGUSR2 dump, and the background
/// exporter.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TELEMETRY_PROMWRITER_H
#define LFMALLOC_TELEMETRY_PROMWRITER_H

#include "profiling/FdWriter.h"
#include "telemetry/LatencyHistogram.h"
#include "telemetry/MetricsSnapshot.h"

namespace lfm {
namespace telemetry {

/// Writes the snapshot's counters, space meter, gauges, and config echo as
/// Prometheus counter/gauge families.
void promWriteMetrics(profiling::FdWriter &W, const MetricsSnapshot &Snap);

/// Writes the `# HELP` / `# TYPE` header of the lf_malloc_latency_ns
/// histogram family. Call once, then promWriteLatencySeries() for each
/// path — exposition format requires a family's series to be contiguous.
void promWriteLatencyHelp(profiling::FdWriter &W);

/// Writes one path's histogram series (buckets, _sum, _count) labelled
/// {path="<PathName>"}. \p PathName must be a plain identifier (the
/// latencyPathName() table) — no label escaping is performed.
void promWriteLatencySeries(profiling::FdWriter &W, const char *PathName,
                            const LatencyHistogramSnapshot &H);

/// Header of the lf_malloc_cas_retries histogram family (sampled retries
/// per retry-loop execution, by CAS site). Same contiguity rule as the
/// latency family.
void promWriteCasRetriesHelp(profiling::FdWriter &W);

/// One site's retries-per-op series labelled {site="<SiteName>"}.
/// \p SiteName must come from the contentionSiteName() table. The "ns" in
/// the snapshot type is retries here; `le` bounds are retry counts (exact
/// for retries <= 7, the LogBuckets singleton range).
void promWriteCasRetriesSeries(profiling::FdWriter &W, const char *SiteName,
                               const LatencyHistogramSnapshot &H);

/// Header of the lf_malloc_cas_loop_ns histogram family (sampled wall time
/// inside a retry loop, by CAS site).
void promWriteCasLoopNsHelp(profiling::FdWriter &W);

/// One site's time-in-loop series labelled {site="<SiteName>"}.
void promWriteCasLoopNsSeries(profiling::FdWriter &W, const char *SiteName,
                              const LatencyHistogramSnapshot &H);

} // namespace telemetry
} // namespace lfm

#endif // LFMALLOC_TELEMETRY_PROMWRITER_H
