//===- telemetry/ShmStatsFormat.h - lfm-shmstats-v1 wire format --*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lfm-shmstats-v1 shared-memory stats segment: a fixed, pre-computed
/// layout another process can parse with zero cooperation from the target
/// — no ctl call, no signal, no exporter thread. The writer (ShmStats.cpp)
/// publishes whole MetricsSnapshot frames with plain seqlock'd stores; the
/// reader (tools/lfm-top, tests) validates magic/version/layout-checksum
/// and copies out the most recent stable frame, retrying on torn reads.
///
/// This header is deliberately self-contained (standard headers only, no
/// allocator or telemetry dependency) so the inspector tool and the GDB
/// helper consume the format without linking the allocator. Every field is
/// a fixed-width little-endian integer at a fixed offset; capacities carry
/// headroom over today's live counts so counters can grow without a
/// version bump, and the header records the *live* counts so readers never
/// iterate reserved slots.
///
/// Segment geometry:
///
///   SegmentHeader          magic, version, layout checksum, counts, pid
///   NameTables             counter/path/site names, written once at open
///   Frame[2]               seqlock'd epoch frames, double-buffered
///
/// The writer alternates frames and flips Header.ActiveFrame after each
/// publish, so one frame is always stable even while the other is being
/// written — a reader can extract a consistent snapshot while the target
/// spins in a retry storm (or never runs again: the final frame survives
/// into a core dump).
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TELEMETRY_SHMSTATSFORMAT_H
#define LFMALLOC_TELEMETRY_SHMSTATSFORMAT_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace lfm {
namespace shmstats {

/// "LFMSHST1" read as a little-endian u64. A byte-flipped or truncated
/// mapping fails the magic before anything else is interpreted.
constexpr std::uint64_t magicValue() {
  const char Tag[9] = "LFMSHST1";
  std::uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | static_cast<unsigned char>(Tag[I]);
  return V;
}

inline constexpr std::uint64_t Magic = magicValue();
inline constexpr std::uint32_t Version = 1;

// Slot capacities. Deliberately above the live counts (56 counters, 12
// latency paths, 17 contention sites, 33 class slots, top-8 heat) so
// adding a counter is not a layout change; the header's live counts tell
// readers how many slots carry data.
inline constexpr std::uint32_t MaxCounters = 72;
inline constexpr std::uint32_t MaxLatencyPaths = 16;
inline constexpr std::uint32_t MaxContentionSites = 24;
inline constexpr std::uint32_t MaxClasses = 40;
inline constexpr std::uint32_t MaxHeatTopK = 16;
inline constexpr std::uint32_t NameCap = 32; ///< Per-name bytes, NUL-padded.
inline constexpr std::uint32_t FrameCount = 2;

/// Latency summary for one outcome path (quantiles are bucket upper
/// bounds, exactly as in MetricsSnapshot::LatencyPathStats).
struct PathStats {
  std::uint64_t Count;
  std::uint64_t SumNs;
  std::uint64_t MaxNs;
  std::uint64_t P50UpperNs;
  std::uint64_t P99UpperNs;
  std::uint64_t P999UpperNs;
};

struct ClassStats {
  std::uint64_t Count;
  std::uint64_t SumNs;
  std::uint64_t MaxNs;
};

/// Contention summary for one CAS retry site.
struct SiteStats {
  std::uint64_t Count;
  std::uint64_t RetriesSum;
  std::uint64_t RetriesMax;
  std::uint64_t RetriesP50;
  std::uint64_t RetriesP99;
  std::uint64_t LoopSumNs;
  std::uint64_t LoopMaxNs;
  std::uint64_t LoopP50UpperNs;
  std::uint64_t LoopP99UpperNs;
};

struct HeatEntry {
  std::uint64_t Sb;      ///< Superblock address.
  std::uint64_t Retries; ///< Sampled retry mass attributed to it.
  std::uint64_t Class;   ///< Size-class index.
};

/// The flattened metrics payload: every field a u64 so torn reads are the
/// only hazard the seqlock must defeat (no internal padding surprises).
/// Field order mirrors the lfm-metrics JSON document.
struct Payload {
  // Operation counters, indexed like telemetry::Counter.
  std::uint64_t Counters[MaxCounters];

  // Space meter (PageStats, in order).
  std::uint64_t SpaceBytesInUse;
  std::uint64_t SpacePeakBytes;
  std::uint64_t SpaceMapCalls;
  std::uint64_t SpaceUnmapCalls;
  std::uint64_t SpaceDecommitCalls;
  std::uint64_t SpaceBytesDecommitted;
  std::uint64_t SpaceMapRetries;
  std::uint64_t SpaceMapFailures;
  std::uint64_t SpaceBytesReserved;
  std::uint64_t SpaceReserveCalls;

  // Subsystem gauges.
  std::uint64_t CachedSuperblocks;
  std::uint64_t DescriptorsMinted;
  std::uint64_t HazardRetired;
  std::uint64_t HazardScans;
  std::uint64_t HazardReclaims;
  std::uint64_t RetainedBytes;
  std::uint64_t DecommittedSuperblocks;
  std::uint64_t ParkedHyperblocks;
  std::uint64_t RetainMaxBytes;
  std::uint64_t RetainDecayMs; ///< i64 bit pattern.
  std::uint64_t TraceEventsEmitted;
  std::uint64_t TraceEventsOverwritten;
  std::uint64_t AllocTraceRecording;
  std::uint64_t AllocTraceOps;
  std::uint64_t AllocTraceDropped;
  std::uint64_t TcacheEnabled;
  std::uint64_t TcacheMagSize;
  std::uint64_t TcacheCachesMinted;
  std::uint64_t TcacheCachesParked;
  std::uint64_t TcacheMagazineBlocks;
  std::uint64_t TcacheDepotBlocks;
  std::uint64_t LargeBackendBuddy;
  std::uint64_t BuddySpansReserved;
  std::uint64_t BuddySpanBytes;
  std::uint64_t BuddyBytesReserved;
  std::uint64_t BuddyBytesCommitted;
  std::uint64_t BuddyBytesAllocated;
  std::uint64_t BuddyFreeCommittedBytes;

  // Sampled latency.
  std::uint64_t LatencyEnabled;
  std::uint64_t LatencySamplePeriod;
  PathStats Latency[MaxLatencyPaths];
  ClassStats LatencyClasses[MaxClasses];

  // Contention and progress.
  std::uint64_t ContentionEnabled;
  std::uint64_t ContentionSamplePeriod;
  std::uint64_t ContentionSamples;
  SiteStats Contention[MaxContentionSites];
  std::uint64_t ContentionClassRetries[MaxClasses];
  HeatEntry ContentionHeat[MaxHeatTopK];
  std::uint64_t ContentionHeatCount;
  std::uint64_t ContentionHeatEntries;
  std::uint64_t ContentionHeatCapacity;
  std::uint64_t ContentionHeatDropped;
  std::uint64_t WatchdogArmed;
  std::uint64_t WatchdogScans;
  std::uint64_t WatchdogStalls;
  std::uint64_t WatchdogStorms;

  // Configuration echo.
  std::uint64_t Heaps;
  std::uint64_t Classes;
  std::uint64_t SuperblockBytes;
  std::uint64_t HyperblockBytes;
  std::uint64_t PartialPolicyFifo;
  std::uint64_t StatsEnabled;
  std::uint64_t TraceEnabled;
  std::uint64_t TelemetryCompiled;
};

/// One seqlock'd publication frame. Seq is odd while the writer is inside
/// the frame; a reader that sees equal, even Seq around its copy holds a
/// consistent snapshot (Boehm's single-writer seqlock recipe, the same
/// idiom the in-process trace rings use).
struct Frame {
  std::uint64_t Seq;
  std::uint64_t Epoch;  ///< Publish ordinal, 1-based; 0 = never published.
  std::uint64_t WallNs; ///< CLOCK_REALTIME at publish.
  std::uint64_t MonoNs; ///< CLOCK_MONOTONIC at publish.
  Payload P;
};

/// Fixed-size name tables, written once when the segment is created, so a
/// reader labels every slot without compiled-in knowledge of the
/// allocator's enum order.
struct NameTables {
  char CounterNames[MaxCounters][NameCap];
  char LatencyPathNames[MaxLatencyPaths][NameCap];
  char ContentionSiteNames[MaxContentionSites][NameCap];
};

struct SegmentHeader {
  std::uint64_t MagicV;
  std::uint32_t VersionV;
  std::uint32_t LayoutChecksum; ///< layoutChecksum(); mismatch = stale ABI.
  std::uint32_t HeaderBytes;    ///< sizeof(SegmentHeader)
  std::uint32_t NamesBytes;     ///< sizeof(NameTables)
  std::uint32_t FrameBytes;     ///< sizeof(Frame)
  std::uint32_t FrameCountV;    ///< FrameCount
  std::uint32_t NameCapV;       ///< NameCap
  std::uint32_t ActiveFrame;    ///< Index of the last fully-published frame.
  // Live counts: how many leading slots of each capacity carry data.
  std::uint32_t NumCounters;
  std::uint32_t NumLatencyPaths;
  std::uint32_t NumContentionSites;
  std::uint32_t NumClasses;
  std::uint32_t HeatTopK;
  std::uint32_t Pid;        ///< Writer pid at open (0 if unknown).
  std::uint64_t StartWallNs; ///< CLOCK_REALTIME when the segment was opened.
  std::uint64_t Publishes;   ///< Total publish() calls, monotone.
};

struct Segment {
  SegmentHeader H;
  NameTables N;
  Frame Frames[FrameCount];
};

inline constexpr std::size_t SegmentBytes = sizeof(Segment);

namespace detail {

constexpr std::uint32_t fnv1aWord(std::uint32_t H, std::uint64_t V) {
  for (int I = 0; I < 8; ++I) {
    H ^= static_cast<std::uint32_t>((V >> (I * 8)) & 0xFF);
    H *= 16777619u;
  }
  return H;
}

} // namespace detail

/// A checksum over everything that defines the byte layout: a reader built
/// against a drifted struct refuses the segment instead of misparsing it.
constexpr std::uint32_t layoutChecksum() {
  std::uint32_t H = 2166136261u;
  H = detail::fnv1aWord(H, Version);
  H = detail::fnv1aWord(H, sizeof(SegmentHeader));
  H = detail::fnv1aWord(H, sizeof(NameTables));
  H = detail::fnv1aWord(H, sizeof(Frame));
  H = detail::fnv1aWord(H, sizeof(Payload));
  H = detail::fnv1aWord(H, MaxCounters);
  H = detail::fnv1aWord(H, MaxLatencyPaths);
  H = detail::fnv1aWord(H, MaxContentionSites);
  H = detail::fnv1aWord(H, MaxClasses);
  H = detail::fnv1aWord(H, MaxHeatTopK);
  H = detail::fnv1aWord(H, NameCap);
  H = detail::fnv1aWord(H, FrameCount);
  H = detail::fnv1aWord(H, offsetof(Segment, N));
  H = detail::fnv1aWord(H, offsetof(Segment, Frames));
  H = detail::fnv1aWord(H, offsetof(Frame, P));
  H = detail::fnv1aWord(H, offsetof(Payload, Latency));
  H = detail::fnv1aWord(H, offsetof(Payload, Contention));
  H = detail::fnv1aWord(H, offsetof(Payload, Heaps));
  return H;
}

/// Reader verdicts. TooSmall/Truncated are distinct on purpose: TooSmall
/// means not even a header is present (wrong file entirely), Truncated
/// means a valid header promises frames the buffer does not hold (partial
/// copy, clipped core).
enum class ReadStatus {
  Ok,
  TooSmall,    ///< Buffer shorter than the segment header.
  BadMagic,    ///< Header present but the magic does not match.
  BadVersion,  ///< Magic ok, version unsupported.
  BadChecksum, ///< Version ok, layout checksum mismatch (ABI drift).
  BadGeometry, ///< Header's sizes/counts disagree with the struct.
  Truncated,   ///< Header valid but the frames run past the buffer.
  Torn,        ///< No stable frame could be copied (both frames mid-write).
};

constexpr const char *readStatusName(ReadStatus S) {
  switch (S) {
  case ReadStatus::Ok:
    return "ok";
  case ReadStatus::TooSmall:
    return "too-small";
  case ReadStatus::BadMagic:
    return "bad-magic";
  case ReadStatus::BadVersion:
    return "bad-version";
  case ReadStatus::BadChecksum:
    return "bad-checksum";
  case ReadStatus::BadGeometry:
    return "bad-geometry";
  case ReadStatus::Truncated:
    return "truncated";
  case ReadStatus::Torn:
    return "torn";
  }
  return "unknown";
}

/// Validates the header in \p Buf. On Ok the caller may cast to Segment
/// (after checking \p Len covers SegmentBytes — Truncated otherwise).
inline ReadStatus validate(const void *Buf, std::size_t Len) {
  if (Buf == nullptr || Len < sizeof(SegmentHeader))
    return ReadStatus::TooSmall;
  SegmentHeader H;
  std::memcpy(&H, Buf, sizeof(H));
  if (H.MagicV != Magic)
    return ReadStatus::BadMagic;
  if (H.VersionV != Version)
    return ReadStatus::BadVersion;
  if (H.LayoutChecksum != layoutChecksum())
    return ReadStatus::BadChecksum;
  if (H.HeaderBytes != sizeof(SegmentHeader) ||
      H.NamesBytes != sizeof(NameTables) || H.FrameBytes != sizeof(Frame) ||
      H.FrameCountV != FrameCount || H.NameCapV != NameCap ||
      H.NumCounters > MaxCounters || H.NumLatencyPaths > MaxLatencyPaths ||
      H.NumContentionSites > MaxContentionSites ||
      H.NumClasses > MaxClasses || H.HeatTopK > MaxHeatTopK)
    return ReadStatus::BadGeometry;
  if (Len < SegmentBytes)
    return ReadStatus::Truncated;
  return ReadStatus::Ok;
}

namespace detail {

/// Word-wise acquire-fenced copy of one frame with seqlock validation.
/// \returns true when the copy is stable (Seq even and unchanged).
inline bool copyFrameOnce(const Frame *Src, Frame &Out) {
  // __atomic builtins rather than std::atomic_ref: the frame lives in a
  // shared mapping as plain POD, and the loads must work through exactly
  // the object representation another process stored.
  const std::uint64_t Seq0 = __atomic_load_n(&Src->Seq, __ATOMIC_ACQUIRE);
  if (Seq0 & 1)
    return false;
  std::memcpy(&Out, Src, sizeof(Frame));
  std::atomic_thread_fence(std::memory_order_acquire);
  return __atomic_load_n(&Src->Seq, __ATOMIC_RELAXED) == Seq0;
}

} // namespace detail

/// Copies the most recent stable frame out of a validated segment.
/// \p Live selects the bounded retry loop for a concurrently-written
/// mapping; with Live false (a static buffer: core dump, file copy) each
/// frame is tried exactly once. \p RetriesOut (optional) reports how many
/// torn copies were observed before success — the torn-read hammer test
/// asserts this goes positive under a concurrent publisher.
inline ReadStatus readLatestFrame(const void *Buf, std::size_t Len, Frame &Out,
                                  bool Live,
                                  std::uint64_t *RetriesOut = nullptr) {
  const ReadStatus V = validate(Buf, Len);
  if (V != ReadStatus::Ok)
    return V;
  const auto *Seg = static_cast<const Segment *>(Buf);
  std::uint64_t Retries = 0;
  const int MaxAttempts = Live ? 4096 : 1;
  ReadStatus Result = ReadStatus::Torn;
  for (int Attempt = 0; Attempt < MaxAttempts && Result != ReadStatus::Ok;
       ++Attempt) {
    // Prefer the frame the header advertises as last-published, but fall
    // back to the other: between the frame's even-Seq store and the
    // ActiveFrame flip there is a window where the advertised index is
    // one behind.
    const std::uint32_t First =
        __atomic_load_n(&Seg->H.ActiveFrame, __ATOMIC_ACQUIRE) % FrameCount;
    Frame Candidate;
    bool Have = false;
    for (std::uint32_t I = 0; I < FrameCount; ++I) {
      const std::uint32_t Idx = (First + I) % FrameCount;
      Frame F;
      if (!detail::copyFrameOnce(&Seg->Frames[Idx], F)) {
        ++Retries;
        continue;
      }
      if (!Have || F.Epoch > Candidate.Epoch) {
        Candidate = F;
        Have = true;
      }
    }
    if (Have) {
      Out = Candidate;
      Result = ReadStatus::Ok;
    }
  }
  if (RetriesOut != nullptr)
    *RetriesOut = Retries;
  return Result;
}

} // namespace shmstats
} // namespace lfm

#endif // LFMALLOC_TELEMETRY_SHMSTATSFORMAT_H
