//===- telemetry/ContentionRecorder.cpp - CAS contention sampling ---------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "telemetry/TelemetryConfig.h"

// The whole translation unit is compiled out under LFMALLOC_TELEMETRY=OFF:
// the CI zero-symbol check asserts this object file defines nothing there.
#if LFM_TELEMETRY

#include "telemetry/ContentionRecorder.h"

#include "profiling/FdWriter.h"
#include "support/Usdt.h"
#include "telemetry/ContentionHook.h"

#include <limits>
#include <new>

namespace lfm {
namespace telemetry {

namespace {

/// Pointer-key mix (the heap profiler's site-table hash): splitmix64
/// finalizer, so superblock addresses sharing aligned low bits still
/// spread over the table.
std::uint64_t hashPtr(std::uint64_t Key) {
  Key ^= Key >> 30;
  Key *= 0xBF58476D1CE4E5B9ull;
  Key ^= Key >> 27;
  Key *= 0x94D049BB133111EBull;
  Key ^= Key >> 31;
  return Key;
}

/// Bounded linear-probe window, as in the profiler site table: long probe
/// chains under a full table would put a scan on the recording path, so
/// past this the sample is dropped (and counted).
constexpr unsigned HeatProbeLimit = 16;

std::uint32_t roundUpPow2(std::uint32_t V) {
  std::uint32_t P = 1;
  while (P < V)
    P <<= 1;
  return P;
}

} // namespace

ContentionRecorder::ContentionRecorder(const Options &O)
    : Period(O.SamplePeriod),
      Seed(O.Seed != 0 ? O.Seed : 0x9E3779B97F4A7C15ull),
      WatchdogOn(O.Watchdog), StallNs(O.StallMs * 1'000'000ull),
      StormLimit(O.StormRetries != 0 ? O.StormRetries : 1) {
  if (Period == 0 && !WatchdogOn)
    return;
  // Bound the period so nextGap's 31-bit multiply-shift range reduction
  // cannot overflow (and a gap beyond a billion loops is indistinguishable
  // from "off" anyway).
  if (Period > (std::uint64_t{1} << 30))
    Period = std::uint64_t{1} << 30;
  HeatCap = roundUpPow2(O.HeatCapacity < 64 ? 64
                        : O.HeatCapacity > (1u << 20) ? (1u << 20)
                                                      : O.HeatCapacity);
  // Time-in-loop and watchdog ages need the tick clock; calibrate here,
  // in cold setup, exactly once per process (calibrate is idempotent).
  cycleclock::calibrate();
  MappedBytes = sizeof(Tables) + (HeatCap - 1) * sizeof(HeatSlot);
  // Page alignment (the provider's minimum) subsumes the cache-line
  // alignment the sharded tables need.
  void *Mem = TablePages.map(MappedBytes, OsPageSize);
  if (Mem == nullptr)
    return; // Recording stays disabled; the allocator itself is unaffected.
  // Placement-new onto zero-filled pages: every atomic starts at zero,
  // every countdown at 0 so each thread's first loop is sampled (making
  // single-threaded tests deterministic from the first loop).
  Tabs = ::new (Mem) Tables();
  // Tables declares Heat[1]; the remaining HeatCap - 1 slots live in the
  // tail of the same mapping.
  for (std::uint32_t I = 1; I < HeatCap; ++I)
    ::new (&Tabs->Heat[I]) HeatSlot();
  // Claim the process-wide hook target; first recorder wins. A secondary
  // allocator's recorder still serves direct recordSample()/snapshot use,
  // it just is not fed by the global hooks.
  ContentionRecorder *Expected = nullptr;
  GlobalContentionRecorder.compare_exchange_strong(Expected, this,
                                                   std::memory_order_release,
                                                   std::memory_order_relaxed);
}

ContentionRecorder::~ContentionRecorder() {
  ContentionRecorder *Self = this;
  GlobalContentionRecorder.compare_exchange_strong(Self, nullptr,
                                                   std::memory_order_acq_rel,
                                                   std::memory_order_relaxed);
  Tables *T = Tabs;
  Tabs = nullptr;
  if (T != nullptr) {
    for (std::uint32_t I = 1; I < HeatCap; ++I)
      T->Heat[I].~HeatSlot();
    T->~Tables();
    TablePages.unmap(T, MappedBytes);
  }
}

std::int64_t ContentionRecorder::nextGap(ThreadState &S) {
  if (Period == 0) // Watchdog-only: park the countdown, never sample.
    return std::numeric_limits<std::int64_t>::max();
  if (Period <= 1)
    return 1;
  std::uint64_t X = S.Rng.load(std::memory_order_relaxed);
  if (X == 0) {
    // First draw on this slot: mix the slot number into the base seed so
    // threads do not sample in lockstep, while a fixed LFM_TEST_SEED still
    // pins every slot's whole gap sequence.
    const std::uint64_t Slot = threadIndex() & (MaxContentionThreads - 1);
    X = Seed ^ (Slot * 0xBF58476D1CE4E5B9ull);
    if (X == 0)
      X = 1;
  }
  // xorshift64*; the high bits of the multiply are the well-mixed ones.
  X ^= X >> 12;
  X ^= X << 25;
  X ^= X >> 27;
  S.Rng.store(X, std::memory_order_relaxed);
  const std::uint64_t R = (X * 0x2545F4914F6CDD1Dull) >> 33; // 31 bits.
  // Uniform on [1, 2*Period - 1]: mean Period, never zero, and bounded so
  // a sampling period of N can never go 2N loops without a sample
  // (Lemire multiply-shift range reduction, as in LatencyRecorder).
  const std::uint64_t Range = 2 * Period - 1;
  return 1 + static_cast<std::int64_t>((R * Range) >> 31);
}

void ContentionRecorder::retryTick(ContentionSite S, std::uint64_t Attempts,
                                   std::uint64_t FirstRetryTick) {
  Tables *T = Tabs;
  if (T == nullptr)
    return;
  // Owner-thread plain relaxed stores on a thread-private line — the
  // countdown discipline; this runs on every retry iteration, so a
  // lock-prefixed RMW here would tax the very contention being measured.
  ProgressSlot &P = T->Progress[threadIndex() & (MaxContentionThreads - 1)];
  P.SitePlus1.store(static_cast<std::uint32_t>(S) + 1,
                    std::memory_order_relaxed);
  P.StartTick.store(FirstRetryTick, std::memory_order_relaxed);
  P.Attempts.store(Attempts, std::memory_order_relaxed);
  P.Epoch.store(P.Epoch.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
}

void ContentionRecorder::retryDone() {
  Tables *T = Tabs;
  if (T == nullptr)
    return;
  ProgressSlot &P = T->Progress[threadIndex() & (MaxContentionThreads - 1)];
  P.SitePlus1.store(0, std::memory_order_relaxed);
  P.Epoch.store(P.Epoch.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
}

void ContentionRecorder::loopEnd(ContentionSite S, std::uint64_t StartTick,
                                 std::uint64_t Attempts, unsigned Class,
                                 const void *Sb) {
  if (StartTick == 0)
    return;
  const std::uint64_t Retries = Attempts > 0 ? Attempts - 1 : 0;
  recordSample(S, Retries,
               cycleclock::ticksToNanos(cycleclock::now() - StartTick), Class,
               Sb);
}

void ContentionRecorder::recordSample(ContentionSite S, std::uint64_t Retries,
                                      std::uint64_t LoopNs, unsigned Class,
                                      const void *Sb) {
  Tables *T = Tabs;
  if (T == nullptr || static_cast<unsigned>(S) >= NumContentionSites)
    return;
  const unsigned SI = static_cast<unsigned>(S);
  // Retries == 0 lands in the LogBuckets singleton bucket 0, so the
  // distribution keeps the uncontended mass too (the retries-per-op p99 is
  // meaningless without it).
  T->Retries[SI].record(Retries);
  T->LoopNs[SI].record(LoopNs);
  T->Samples.fetch_add(1, std::memory_order_relaxed);
  if (Retries == 0)
    return;
  const unsigned C = Class < NumSizeClasses ? Class : NumSizeClasses;
  T->ClassRetries[C].fetch_add(Retries, std::memory_order_relaxed);
  if (Sb != nullptr)
    heatAdd(Sb, Class, Retries);
}

void ContentionRecorder::heatAdd(const void *Sb, unsigned Class,
                                 std::uint64_t Retries) {
  Tables *T = Tabs;
  const std::uint64_t Key = reinterpret_cast<std::uintptr_t>(Sb);
  const std::uint64_t H = hashPtr(Key);
  const std::uint32_t Mask = HeatCap - 1;
  for (unsigned I = 0; I < HeatProbeLimit; ++I) {
    HeatSlot &Slot = T->Heat[(H + I) & Mask];
    std::uint64_t K = Slot.Sb.load(std::memory_order_relaxed);
    if (K == 0) {
      // CAS-claim from empty (profiler site-table discipline); on failure
      // K holds the winner — which may be us-by-proxy (same superblock
      // claimed by a racing thread).
      if (Slot.Sb.compare_exchange_strong(K, Key, std::memory_order_relaxed))
        K = Key;
      if (K == Key)
        T->HeatEntries.fetch_add(1, std::memory_order_relaxed);
    }
    if (K != Key)
      continue;
    Slot.Retries.fetch_add(Retries, std::memory_order_relaxed);
    // Last writer wins: a superblock belongs to one size class for its
    // lifetime, so disagreement only happens across reuse.
    Slot.Class.store((Class < NumSizeClasses ? Class : NumSizeClasses) + 1,
                     std::memory_order_relaxed);
    return;
  }
  // Every probe in the window is taken by someone else: account the drop —
  // a silent drop would make a cool-looking heat table out of a hot run.
  T->HeatDropped.fetch_add(1, std::memory_order_relaxed);
}

unsigned ContentionRecorder::topHeat(ContentionHeatEntry *Out,
                                     unsigned K) const {
  const Tables *T = Tabs;
  if (T == nullptr || K == 0)
    return 0;
  unsigned N = 0;
  for (std::uint32_t I = 0; I < HeatCap; ++I) {
    const HeatSlot &Slot = T->Heat[I];
    const std::uint64_t Sb = Slot.Sb.load(std::memory_order_relaxed);
    if (Sb == 0)
      continue;
    ContentionHeatEntry E;
    E.Sb = Sb;
    E.Retries = Slot.Retries.load(std::memory_order_relaxed);
    const std::uint32_t CPlus1 = Slot.Class.load(std::memory_order_relaxed);
    E.Class = CPlus1 > 0 ? CPlus1 - 1 : NumSizeClasses;
    // Insertion into the descending top-K prefix; K is tiny (<= 8 in the
    // snapshot path), so O(N*K) over the table is fine off the hot path.
    unsigned Pos = N < K ? N : K;
    while (Pos > 0 && Out[Pos - 1].Retries < E.Retries)
      --Pos;
    if (Pos >= K)
      continue;
    for (unsigned J = (N < K ? N : K - 1); J > Pos; --J)
      Out[J] = Out[J - 1];
    Out[Pos] = E;
    if (N < K)
      ++N;
  }
  return N;
}

WatchdogReport ContentionRecorder::watchdogScan(int DiagFd) {
  WatchdogReport Rep;
  Tables *T = Tabs;
  if (T == nullptr)
    return Rep;
  const std::uint64_t Now = cycleclock::now();
  // Fd < 0 = silent scan: nothing is ever buffered, so the dtor flush is a
  // no-op and no write(2) hits a bogus descriptor.
  profiling::FdWriter W(DiagFd);
  for (unsigned I = 0; I < MaxContentionThreads; ++I) {
    ProgressSlot &P = T->Progress[I];
    // Racy read of another thread's plain stores: a torn view can mis-age
    // one slot for one scan, which the verdict below tolerates (the next
    // scan sees it settled).
    const std::uint32_t SitePlus1 = P.SitePlus1.load(std::memory_order_relaxed);
    const std::uint64_t Epoch = P.Epoch.load(std::memory_order_relaxed);
    const std::uint64_t Attempts = P.Attempts.load(std::memory_order_relaxed);
    if (SitePlus1 == 0) {
      T->LastEpoch[I] = Epoch;
      T->LastAttempts[I] = Attempts;
      continue;
    }
    ++Rep.BusySlots;
    const std::uint64_t Start = P.StartTick.load(std::memory_order_relaxed);
    const std::uint64_t AgeNs =
        Now > Start ? cycleclock::ticksToNanos(Now - Start) : 0;
    const bool Advanced =
        Epoch != T->LastEpoch[I] || Attempts != T->LastAttempts[I];
    T->LastEpoch[I] = Epoch;
    T->LastAttempts[I] = Attempts;
    bool IsStorm = false;
    bool Flagged = false;
    if (Attempts >= StormLimit) {
      // Pathological retry count, regardless of age.
      Flagged = IsStorm = true;
    } else if (AgeNs > StallNs) {
      // Old enough to care: still accumulating attempts means threads are
      // running but nobody (here) is succeeding — a retry storm. A frozen
      // count means the thread stopped mid-loop (descheduled, or killed) —
      // which, by the paper's lock-free guarantee, must not have wedged
      // anyone else; this verdict is how that claim gets checked at
      // runtime. A thread parked *between* retries looks idle instead:
      // storms are the primary signal, stalls best-effort.
      Flagged = true;
      IsStorm = Advanced;
    }
    if (!Flagged)
      continue;
    if (IsStorm) {
      ++Rep.Storms;
      LFM_PROBE2(watchdog_storm, SitePlus1 - 1, Attempts);
    } else {
      ++Rep.Stalls;
      LFM_PROBE2(watchdog_stall, SitePlus1 - 1, AgeNs);
    }
    if (DiagFd >= 0) {
      const ContentionSite S = static_cast<ContentionSite>(SitePlus1 - 1);
      W.str("lf_malloc watchdog: ");
      W.str(IsStorm ? "storm" : "stall");
      W.str(" slot=");
      W.dec(I);
      W.str(" site=");
      W.str(contentionSiteName(S));
      W.str(" attempts=");
      W.dec(Attempts);
      W.str(" age_ns=");
      W.dec(AgeNs);
      W.ch('\n');
    }
  }
  if (DiagFd >= 0)
    W.flush();
  T->WatchdogScans.fetch_add(1, std::memory_order_relaxed);
  T->WatchdogStalls.fetch_add(Rep.Stalls, std::memory_order_relaxed);
  T->WatchdogStorms.fetch_add(Rep.Storms, std::memory_order_relaxed);
  return Rep;
}

void ContentionRecorder::snapshotRetries(ContentionSite S,
                                         LatencyHistogramSnapshot &Out) const {
  Out = LatencyHistogramSnapshot();
  const Tables *T = Tabs;
  if (T == nullptr || static_cast<unsigned>(S) >= NumContentionSites)
    return;
  T->Retries[static_cast<unsigned>(S)].snapshot(Out);
}

void ContentionRecorder::snapshotLoopNs(ContentionSite S,
                                        LatencyHistogramSnapshot &Out) const {
  Out = LatencyHistogramSnapshot();
  const Tables *T = Tabs;
  if (T == nullptr || static_cast<unsigned>(S) >= NumContentionSites)
    return;
  T->LoopNs[static_cast<unsigned>(S)].snapshot(Out);
}

namespace contention_detail {

std::uint64_t hookLoopBegin(ContentionRecorder &R) { return R.loopBegin(); }

void hookRetry(ContentionRecorder &R, ContentionSite S, std::uint64_t Attempts,
               std::uint64_t &FirstRetryTick) {
  if (FirstRetryTick == 0) {
    FirstRetryTick = cycleclock::now();
    if (FirstRetryTick == 0)
      FirstRetryTick = 1;
  }
  R.retryTick(S, Attempts, FirstRetryTick);
}

void hookDone(ContentionRecorder &R, ContentionSite S, std::uint64_t StartTick,
              std::uint64_t Attempts, unsigned Class, const void *Sb) {
  if (Attempts >= 2)
    R.retryDone();
  R.loopEnd(S, StartTick, Attempts, Class, Sb);
}

} // namespace contention_detail

} // namespace telemetry
} // namespace lfm

#endif // LFM_TELEMETRY
