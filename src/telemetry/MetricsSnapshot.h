//===- telemetry/MetricsSnapshot.h - Stable metrics export -------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stable, versioned view of an allocator's metrics: every telemetry
/// counter plus space accounting and subsystem gauges, flattened into one
/// plain struct so harnesses and tests consume a fixed ABI rather than
/// poking at allocator internals. writeMetricsJson() renders it as the
/// machine-readable form the benchmark driver's --metrics-json flag emits.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TELEMETRY_METRICSSNAPSHOT_H
#define LFMALLOC_TELEMETRY_METRICSSNAPSHOT_H

#include "lfmalloc/SizeClasses.h"
#include "os/PageAllocator.h"
#include "telemetry/ContentionSite.h"
#include "telemetry/Counters.h"
#include "telemetry/LatencyPath.h"

#include <cstdint>
#include <cstdio>

namespace lfm {
namespace telemetry {

/// Compact latency summary for one outcome path. Quantiles are the
/// inclusive *upper bounds* of the log-linear bucket holding that rank —
/// never interpolated point values (support/LogBuckets.h, 12.5% relative
/// resolution). Zero when no sample hit the path.
struct LatencyPathStats {
  std::uint64_t Count = 0;
  std::uint64_t SumNs = 0;
  std::uint64_t MaxNs = 0;
  std::uint64_t P50UpperNs = 0;
  std::uint64_t P99UpperNs = 0;
  std::uint64_t P999UpperNs = 0;
};

/// Per-size-class latency moments (count/sum/max only; the histograms are
/// per path). Index NumSizeClasses is the shared large/OS slot.
struct LatencyClassStats {
  std::uint64_t Count = 0;
  std::uint64_t SumNs = 0;
  std::uint64_t MaxNs = 0;
};

/// Compact contention summary for one CAS retry site (lfm-metrics-v3).
/// Quantiles follow the latency convention: inclusive bucket upper bounds,
/// never interpolated. Full bucket detail goes through the Prometheus
/// lf_malloc_cas_retries exposition instead of this document.
struct ContentionSiteStats {
  std::uint64_t Count = 0;        ///< Sampled loop executions.
  std::uint64_t RetriesSum = 0;   ///< Total sampled retries at this site.
  std::uint64_t RetriesMax = 0;
  std::uint64_t RetriesP50 = 0;   ///< Exact for retries <= 7 (LogBuckets
                                  ///< singletons), bucket upper above.
  std::uint64_t RetriesP99 = 0;
  std::uint64_t LoopSumNs = 0;    ///< Total sampled time-in-loop.
  std::uint64_t LoopMaxNs = 0;
  std::uint64_t LoopP50UpperNs = 0;
  std::uint64_t LoopP99UpperNs = 0;
};

/// Point-in-time metrics for one allocator instance. Counter values are
/// racy snapshots while threads run and exact once they quiesce.
struct MetricsSnapshot {
  /// All telemetry counters, indexed by Counter. Zero when the build or
  /// the instance has telemetry disabled.
  std::uint64_t Counters[NumCounters] = {};

  /// Space accounting from the allocator's PageAllocator.
  PageStats Space = {};

  // Subsystem gauges (current values, not monotonic).
  std::uint64_t CachedSuperblocks = 0;  ///< Superblocks idle in the cache.
  std::uint64_t DescriptorsMinted = 0;  ///< Descriptors ever created.
  std::uint64_t HazardRetired = 0;      ///< Nodes awaiting reclamation.
  std::uint64_t HazardScans = 0;        ///< Hazard-pointer scan() passes.
  std::uint64_t HazardReclaims = 0;     ///< Nodes freed by scans.

  // Memory-return gauges.
  std::uint64_t RetainedBytes = 0;        ///< Bytes idle in the sb cache.
  std::uint64_t DecommittedSuperblocks = 0; ///< Cached sbs with pages
                                            ///< returned to the OS.
  std::uint64_t ParkedHyperblocks = 0;    ///< Fully-free hyperblocks held
                                          ///< decommitted for reuse.
  std::uint64_t RetainMaxBytes = 0;       ///< Retention watermark in force.
  std::int64_t RetainDecayMs = -1;        ///< Decay period; -1 = off.

  // Large-backend gauges (lfm-metrics-v4). LargeBackendBuddy echoes the
  // selection; the byte gauges are all zero for the os-direct backend and
  // the buddy_* operation counters live in the Counters array (folded in
  // at snapshot time from the backend's own relaxed cells).
  bool LargeBackendBuddy = false;
  std::uint64_t BuddySpansReserved = 0;
  std::uint64_t BuddySpanBytes = 0;          ///< Configured span size echo.
  std::uint64_t BuddyBytesReserved = 0;      ///< Address space reserved.
  std::uint64_t BuddyBytesCommitted = 0;     ///< Physical pages promised.
  std::uint64_t BuddyBytesAllocated = 0;     ///< Live large-block bytes.
  std::uint64_t BuddyFreeCommittedBytes = 0; ///< Trimmable residue.

  // Trace-ring accounting (zero when tracing is off).
  std::uint64_t TraceEventsEmitted = 0;
  std::uint64_t TraceEventsOverwritten = 0;

  // Allocation flight recorder health (trace/AllocTrace.h; all zero when
  // LFM_ALLOC_TRACE=0 or no recording has run).
  bool AllocTraceRecording = false;
  std::uint64_t AllocTraceOps = 0;
  std::uint64_t AllocTraceDropped = 0;

  // Sampled-latency observability (lfm-metrics-v2; all zero when latency
  // recording is off or LFM_TELEMETRY=0).
  bool LatencyEnabled = false;
  std::uint64_t LatencySamplePeriod = 0;
  LatencyPathStats Latency[NumLatencyPaths] = {};
  LatencyClassStats LatencyClasses[NumSizeClasses + 1] = {};

  // Contention-and-progress observability (lfm-metrics-v3; all zero when
  // contention recording is off or LFM_TELEMETRY=0).
  bool ContentionEnabled = false;
  std::uint64_t ContentionSamplePeriod = 0;
  std::uint64_t ContentionSamples = 0;
  ContentionSiteStats Contention[NumContentionSites] = {};
  /// Sampled retry mass per size class; index NumSizeClasses is the
  /// no-class bucket (descriptor/list machinery).
  std::uint64_t ContentionClassRetries[NumSizeClasses + 1] = {};
  /// Hottest superblocks by sampled retry mass, descending;
  /// ContentionHeatCount entries are valid.
  ContentionHeatEntry ContentionHeat[ContentionTopK] = {};
  std::uint32_t ContentionHeatCount = 0;
  std::uint64_t ContentionHeatEntries = 0; ///< Distinct sbs in the table.
  std::uint64_t ContentionHeatCapacity = 0;
  std::uint64_t ContentionHeatDropped = 0; ///< Overflow, never silent.
  bool WatchdogArmed = false;
  std::uint64_t WatchdogScans = 0;
  std::uint64_t WatchdogStalls = 0;
  std::uint64_t WatchdogStorms = 0;

  // Shared-memory stats segment (lfm-metrics-v5; telemetry/ShmStats.h).
  // All zero when no segment is mapped or LFM_TELEMETRY=0.
  bool ShmStatsActive = false;
  std::uint64_t ShmStatsEpoch = 0;     ///< Epoch of the last frame.
  std::uint64_t ShmStatsPublishes = 0; ///< Frames published so far.
  std::uint64_t ShmStatsBytes = 0;     ///< Mapped segment size.

  // Configuration echo, so a JSON consumer can interpret the numbers.
  std::uint64_t Heaps = 0;
  std::uint64_t Classes = 0;
  std::uint64_t SuperblockBytes = 0;
  std::uint64_t HyperblockBytes = 0;
  bool PartialPolicyFifo = false;
  bool StatsEnabled = false;
  /// Thread-cache (magazine layer) gauges; all zero when the feature is
  /// off. Hit counters live in the Counters array (folded in at snapshot
  /// time from the RMW-free per-cache cells).
  bool TcacheEnabled = false;
  std::uint64_t TcacheMagSize = 0;        ///< Configured slot cap echo.
  std::uint64_t TcacheCachesMinted = 0;   ///< Cache slabs ever mapped.
  std::uint64_t TcacheCachesParked = 0;   ///< Caches awaiting adoption.
  std::uint64_t TcacheMagazineBlocks = 0; ///< Blocks in magazines now.
  std::uint64_t TcacheDepotBlocks = 0;    ///< Blocks in depots now.
  bool TraceEnabled = false;
  /// False when the library was built with LFM_TELEMETRY=0 (counters
  /// beyond the legacy eight are then structurally zero).
  bool TelemetryCompiled = false;

  std::uint64_t counter(Counter C) const {
    return Counters[static_cast<unsigned>(C)];
  }
};

/// Writes \p Snap as a single JSON object: {"schema":"lfm-metrics-v5",
/// "config":{...},"space":{...},"counters":{...},"gauges":{...},
/// "latency":{...},"contention":{...}}. Each version is a strict superset
/// of the previous: every v1/v2 field keeps its name and position, so
/// older consumers keep parsing.
void writeMetricsJson(const MetricsSnapshot &Snap, std::FILE *Out);

/// Same document, written to a raw fd with no stdio and no heap
/// allocation — the form the background stats exporter and signal-path
/// dumps use (the exporter must never allocate from the allocator it is
/// describing).
void writeMetricsJsonFd(const MetricsSnapshot &Snap, int Fd);

} // namespace telemetry
} // namespace lfm

#endif // LFMALLOC_TELEMETRY_METRICSSNAPSHOT_H
