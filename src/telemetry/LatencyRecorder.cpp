//===- telemetry/LatencyRecorder.cpp - Sampled latency recording ----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "telemetry/TelemetryConfig.h"

// The whole translation unit is compiled out under LFMALLOC_TELEMETRY=OFF:
// the CI zero-symbol check asserts this object file defines nothing there.
#if LFM_TELEMETRY

#include "telemetry/LatencyRecorder.h"

#include "telemetry/StatsExporter.h"

#include <new>

namespace lfm {
namespace telemetry {

LatencyRecorder::LatencyRecorder(const Options &O)
    : Period(O.SamplePeriod),
      Seed(O.Seed != 0 ? O.Seed : 0x9E3779B97F4A7C15ull) {
  if (Period == 0)
    return;
  // Bound the period so nextGap's 31-bit multiply-shift range reduction
  // cannot overflow (and a gap beyond a billion ops is indistinguishable
  // from "off" anyway).
  if (Period > (std::uint64_t{1} << 30))
    Period = std::uint64_t{1} << 30;
  // Page alignment (the provider's minimum) subsumes the cache-line
  // alignment the sharded tables need.
  void *Mem = TablePages.map(sizeof(Tables), OsPageSize);
  if (Mem == nullptr)
    return; // Recording stays disabled; the allocator itself is unaffected.
  // Placement-new onto zero-filled pages: every atomic starts at zero, every
  // countdown at 0 so each thread's first operation is sampled (making
  // single-threaded tests deterministic from the first op).
  Tabs = ::new (Mem) Tables();
}

LatencyRecorder::~LatencyRecorder() {
  Tables *T = Tabs;
  Tabs = nullptr;
  if (T != nullptr) {
    T->~Tables();
    TablePages.unmap(T, sizeof(Tables));
  }
}

std::int64_t LatencyRecorder::nextGap(ThreadState &S) {
  if (Period <= 1)
    return 1;
  std::uint64_t X = S.Rng.load(std::memory_order_relaxed);
  if (X == 0) {
    // First draw on this slot: mix the slot number into the base seed so
    // threads do not sample in lockstep, while a fixed LFM_TEST_SEED still
    // pins every slot's whole gap sequence.
    const std::uint64_t Slot = threadIndex() & (MaxLatencyThreads - 1);
    X = Seed ^ (Slot * 0xBF58476D1CE4E5B9ull);
    if (X == 0)
      X = 1;
  }
  // xorshift64*; the high bits of the multiply are the well-mixed ones.
  X ^= X >> 12;
  X ^= X << 25;
  X ^= X >> 27;
  S.Rng.store(X, std::memory_order_relaxed);
  const std::uint64_t R = (X * 0x2545F4914F6CDD1Dull) >> 33; // 31 bits.
  // Uniform on [1, 2*Period - 1]: mean Period, never zero, and bounded so
  // a sampling period of N can never go 2N ops without a sample. Lemire's
  // multiply-shift range reduction: R is 31 bits, so (R * Range) >> 31 is
  // uniform over [0, Range) without the ~25-cycle divide `%` would cost
  // on this (sampled, but still per-sample) path.
  const std::uint64_t Range = 2 * Period - 1;
  return 1 + static_cast<std::int64_t>((R * Range) >> 31);
}

void LatencyRecorder::recordNs(LatencyPath P, unsigned Class,
                               std::uint64_t Ns) {
  Tables *T = Tabs;
  if (T == nullptr || static_cast<unsigned>(P) >= NumLatencyPaths)
    return;
  const unsigned Slot = threadIndex() & (MaxLatencyThreads - 1);
  T->Hists[static_cast<unsigned>(P)].recordBucket(Ns);
  // Owner-thread plain load/store on thread-private slots — no lock
  // prefix (see ClassLocal/PathLocal).
  PathLocal &L = T->Paths[Slot];
  const unsigned PI = static_cast<unsigned>(P);
  L.Sum[PI].store(L.Sum[PI].load(std::memory_order_relaxed) + Ns,
                  std::memory_order_relaxed);
  if (Ns > L.Max[PI].load(std::memory_order_relaxed))
    L.Max[PI].store(Ns, std::memory_order_relaxed);
  if (LFM_UNLIKELY(onExporterThread()))
    T->ExporterSamples.fetch_add(1, std::memory_order_relaxed);
  if (Class < NumLatencyClasses) {
    ClassLocal &S = T->Classes[Slot];
    S.Count[Class].store(S.Count[Class].load(std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
    S.Sum[Class].store(S.Sum[Class].load(std::memory_order_relaxed) + Ns,
                       std::memory_order_relaxed);
    if (Ns > S.Max[Class].load(std::memory_order_relaxed))
      S.Max[Class].store(Ns, std::memory_order_relaxed);
  }
}

std::uint64_t LatencyRecorder::samples() const {
  const Tables *T = Tabs;
  if (T == nullptr)
    return 0;
  // Every sample lands in exactly one path histogram, so the bucket sum
  // is the sample total — no recording-side counter needed.
  std::uint64_t Total = 0;
  LatencyHistogramSnapshot Snap;
  for (unsigned P = 0; P < NumLatencyPaths; ++P) {
    Snap = LatencyHistogramSnapshot();
    T->Hists[P].snapshot(Snap);
    Total += Snap.Count;
  }
  return Total;
}

std::uint64_t LatencyRecorder::exporterSamples() const {
  const Tables *T = Tabs;
  return T != nullptr ? T->ExporterSamples.load(std::memory_order_relaxed)
                      : 0;
}

void LatencyRecorder::snapshotPath(LatencyPath P,
                                   LatencyHistogramSnapshot &Out) const {
  Out = LatencyHistogramSnapshot();
  const Tables *T = Tabs;
  if (T == nullptr || static_cast<unsigned>(P) >= NumLatencyPaths)
    return;
  const unsigned PI = static_cast<unsigned>(P);
  T->Hists[PI].snapshot(Out);
  // The histogram shards only carry bucket counts on the recording path;
  // Sum/Max live in the per-thread slots. snapshot() read all-zero shard
  // Sum/Max, so overwrite rather than accumulate.
  Out.SumNs = 0;
  Out.MaxNs = 0;
  for (const PathLocal &L : T->Paths) {
    Out.SumNs += L.Sum[PI].load(std::memory_order_relaxed);
    const std::uint64_t M = L.Max[PI].load(std::memory_order_relaxed);
    if (M > Out.MaxNs)
      Out.MaxNs = M;
  }
}

void LatencyRecorder::classSummary(unsigned Class, std::uint64_t &Count,
                                   std::uint64_t &Sum,
                                   std::uint64_t &Max) const {
  Count = Sum = Max = 0;
  const Tables *T = Tabs;
  if (T == nullptr || Class >= NumLatencyClasses)
    return;
  for (const ClassLocal &S : T->Classes) {
    Count += S.Count[Class].load(std::memory_order_relaxed);
    Sum += S.Sum[Class].load(std::memory_order_relaxed);
    const std::uint64_t M = S.Max[Class].load(std::memory_order_relaxed);
    if (M > Max)
      Max = M;
  }
}

} // namespace telemetry
} // namespace lfm

#endif // LFM_TELEMETRY
