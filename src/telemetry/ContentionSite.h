//===- telemetry/ContentionSite.h - CAS retry-loop taxonomy ------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CAS retry loops contention samples are attributed to. One id per
/// bounded-retry loop in the lock-free core — every loop whose iteration
/// count is the paper's "retries against successful progress by others"
/// gets its own distributions, so no retry loop is invisible to the
/// contention recorder (docs/OBSERVABILITY.md, "Contention & progress").
///
/// The ids deliberately mirror sched::Site (schedtest/SchedPoint.h) where
/// both exist: the schedule explorer forces a loop to retry, the
/// contention recorder measures how often production loops actually do.
///
/// This header is plain enum + names with no storage, so it is safe to
/// include from every build configuration including LFM_TELEMETRY=0 and
/// from the lowest layers (lockfree/).
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TELEMETRY_CONTENTIONSITE_H
#define LFMALLOC_TELEMETRY_CONTENTIONSITE_H

#include <cstdint>

namespace lfm {
namespace telemetry {

enum class ContentionSite : unsigned {
  // LFAllocator anchor loops (paper Figs. 4 and 6).
  ActiveReserve,  ///< Fig. 4 MallocFromActive credit-reserve CAS loop.
  ActivePop,      ///< Fig. 4 MallocFromActive anchor pop CAS loop.
  PartialReserve, ///< Fig. 4 MallocFromPartial reserve CAS loop.
  PartialPop,     ///< Fig. 4 MallocFromPartial pop CAS loop.
  FreePush,       ///< Fig. 6 free() anchor push CAS loop.
  UpdateActive,   ///< Fig. 4 UpdateActive credit-return anchor CAS loop.
  // DescriptorAllocator (paper Fig. 7).
  DescPop,  ///< DescAlloc hazard-protected freelist pop loop.
  DescPush, ///< DescRetire / pushFree freelist push loop.
  // Superblock cache.
  SbAcquire, ///< SuperblockCache::acquire pop/unpark/mint loop.
  // Generic lock-free substrate.
  TreiberPush, ///< TreiberStack::push head CAS loop.
  TreiberPop,  ///< TreiberStack::pop head CAS loop (tagged ABA window).
  MsqEnqueue,  ///< MSQueue::enqueue link CAS loop.
  MsqDequeue,  ///< MSQueue::dequeue head CAS loop.
  // Thread-local magazine cache depot.
  TcacheDepotPush,  ///< Depot chain-push CAS loop.
  TcacheDepotSteal, ///< Depot steal-all exchange + leftover re-push loop.
  // Buddy large-object backend (BuddyBackend.cpp).
  BuddyAlloc,    ///< Status-tree claim scan: CAS(0 -> BUSY) + ancestor marks.
  BuddyCoalesce, ///< Trim walk claiming maximal free blocks for decommit.
  SiteCount
};

inline constexpr unsigned NumContentionSites =
    static_cast<unsigned>(ContentionSite::SiteCount);

/// Stable snake_case name used in metrics JSON and Prometheus labels.
constexpr const char *contentionSiteName(ContentionSite S) {
  switch (S) {
  case ContentionSite::ActiveReserve:
    return "active_reserve";
  case ContentionSite::ActivePop:
    return "active_pop";
  case ContentionSite::PartialReserve:
    return "partial_reserve";
  case ContentionSite::PartialPop:
    return "partial_pop";
  case ContentionSite::FreePush:
    return "free_push";
  case ContentionSite::UpdateActive:
    return "update_active";
  case ContentionSite::DescPop:
    return "desc_pop";
  case ContentionSite::DescPush:
    return "desc_push";
  case ContentionSite::SbAcquire:
    return "sb_acquire";
  case ContentionSite::TreiberPush:
    return "treiber_push";
  case ContentionSite::TreiberPop:
    return "treiber_pop";
  case ContentionSite::MsqEnqueue:
    return "msq_enqueue";
  case ContentionSite::MsqDequeue:
    return "msq_dequeue";
  case ContentionSite::TcacheDepotPush:
    return "tcache_depot_push";
  case ContentionSite::TcacheDepotSteal:
    return "tcache_depot_steal";
  case ContentionSite::BuddyAlloc:
    return "buddy_alloc";
  case ContentionSite::BuddyCoalesce:
    return "buddy_coalesce";
  case ContentionSite::SiteCount:
    break;
  }
  return "unknown";
}

/// Hottest-superblock entries surfaced in MetricsSnapshot.
inline constexpr unsigned ContentionTopK = 8;

/// One hot-superblock row of the heat table's top-K extraction. Lives here
/// (not in ContentionRecorder.h) so MetricsSnapshot stays a plain struct
/// with no recorder dependency in any build configuration.
struct ContentionHeatEntry {
  std::uint64_t Sb = 0;      ///< Superblock address.
  std::uint64_t Retries = 0; ///< Sampled retry mass attributed to it.
  std::uint32_t Class = 0;   ///< Size-class index (last writer wins).
};

} // namespace telemetry
} // namespace lfm

#endif // LFMALLOC_TELEMETRY_CONTENTIONSITE_H
