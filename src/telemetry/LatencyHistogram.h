//===- telemetry/LatencyHistogram.h - Sharded latency histogram --*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free, cache-line-sharded log-linear histogram for nanosecond
/// latency samples. The bucket layout comes from support/LogBuckets.h
/// (8 minor buckets per power of two — 12.5% relative resolution across
/// the whole 64-bit range), which the bench-side LogHistogram shares, so
/// in-allocator and bench-reported percentiles land in identical buckets.
///
/// Recording is one relaxed fetch-add on the calling thread's shard (the
/// CounterSet discipline: threads mod ShardCount never share a line for
/// the same bucket index range). Reads merge shards into a caller-provided
/// array — a racy snapshot, exact at quiescence — and quantiles come back
/// as exact bucket bounds, never invented point values.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TELEMETRY_LATENCYHISTOGRAM_H
#define LFMALLOC_TELEMETRY_LATENCYHISTOGRAM_H

#include "support/LogBuckets.h"
#include "support/Platform.h"
#include "support/ThreadRegistry.h"

#include <atomic>
#include <cstdint>

namespace lfm {
namespace telemetry {

/// One merged histogram snapshot plus its summary moments; ~4 KB, sized
/// for the stack of an export path.
struct LatencyHistogramSnapshot {
  std::uint64_t Buckets[logbuckets::NumBuckets] = {};
  std::uint64_t Count = 0;
  std::uint64_t SumNs = 0;
  std::uint64_t MaxNs = 0;

  /// Inclusive upper bucket bound of the rank-Q sample (0 when empty).
  /// The true quantile lies in [bucketLower(b), this].
  std::uint64_t quantileUpperNs(double Q) const {
    if (Count == 0)
      return 0;
    return logbuckets::bucketUpper(
        logbuckets::quantileBucket(Buckets, Count, Q));
  }
  std::uint64_t quantileLowerNs(double Q) const {
    if (Count == 0)
      return 0;
    return logbuckets::bucketLower(
        logbuckets::quantileBucket(Buckets, Count, Q));
  }
};

/// The sharded histogram itself. Plain-struct layout (no constructor side
/// effects beyond zeroing) so arrays of these can live in page-allocator
/// memory that arrives zero-filled.
class LatencyHistogram {
public:
  /// Shards. Latency samples are already decimated by the sampler
  /// (default 1 in 64 operations), but a contended RMW costs enough
  /// (~40 ns line ping-pong) that two threads sharing a shard shows up
  /// in the 3%-overhead budget; eight shards keep a typical machine's
  /// worth of recording threads on private lines, and the tables are
  /// lazily backed pages so unused shards cost address space only.
  static constexpr unsigned ShardCount = 8;

  /// Records one sample of \p Ns nanoseconds. Lock-free, relaxed,
  /// async-signal-safe.
  void record(std::uint64_t Ns) {
    Shard &S = Shards[threadIndex() & (ShardCount - 1)];
    S.Buckets[logbuckets::bucketIndex(Ns)].fetch_add(
        1, std::memory_order_relaxed);
    S.Sum.fetch_add(Ns, std::memory_order_relaxed);
    // Racy max: a concurrent larger value may briefly regress, then a
    // later read re-raises it. Monotone at quiescence, which is when the
    // tests assert it.
    std::uint64_t Old = S.Max.load(std::memory_order_relaxed);
    while (Ns > Old &&
           !S.Max.compare_exchange_weak(Old, Ns, std::memory_order_relaxed))
      ;
  }

  /// Bucket-only variant for callers that account Sum/Max elsewhere (the
  /// LatencyRecorder keeps them in thread-private plain slots — one
  /// lock-prefixed RMW per sample instead of three).
  void recordBucket(std::uint64_t Ns) {
    Shards[threadIndex() & (ShardCount - 1)]
        .Buckets[logbuckets::bucketIndex(Ns)]
        .fetch_add(1, std::memory_order_relaxed);
  }

  /// Merges every shard into \p Out (accumulating on top of whatever is
  /// already there, so multiple histograms can merge into one snapshot).
  void snapshot(LatencyHistogramSnapshot &Out) const {
    for (const Shard &S : Shards) {
      for (unsigned I = 0; I < logbuckets::NumBuckets; ++I) {
        const std::uint64_t N = S.Buckets[I].load(std::memory_order_relaxed);
        Out.Buckets[I] += N;
        Out.Count += N;
      }
      Out.SumNs += S.Sum.load(std::memory_order_relaxed);
      const std::uint64_t M = S.Max.load(std::memory_order_relaxed);
      if (M > Out.MaxNs)
        Out.MaxNs = M;
    }
  }

private:
  struct alignas(CacheLineSize) Shard {
    std::atomic<std::uint64_t> Buckets[logbuckets::NumBuckets];
    std::atomic<std::uint64_t> Sum;
    std::atomic<std::uint64_t> Max;
  };

  Shard Shards[ShardCount] = {};
};

} // namespace telemetry
} // namespace lfm

#endif // LFMALLOC_TELEMETRY_LATENCYHISTOGRAM_H
