//===- telemetry/StatsExporter.cpp - Background stats exporter ------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "telemetry/StatsExporter.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <pthread.h>
#include <unistd.h>

namespace lfm {
namespace telemetry {

namespace detail {
thread_local bool OnExporterThread = false;
} // namespace detail

namespace {

constexpr std::size_t PrefixMax = 256;

// Process-wide exporter state, guarded by Mu. The condition variable is
// created lazily so it can use CLOCK_MONOTONIC (a wall-clock step must not
// stretch or shrink the export interval).
pthread_mutex_t Mu = PTHREAD_MUTEX_INITIALIZER;
pthread_cond_t Cv;
bool CvInitialized = false;
bool Running = false;
bool StopRequested = false;
pthread_t Thread;
char Prefix[PrefixMax] = "lfm-stats";
std::uint64_t IntervalMs = 0;
StatsExporter::EmitFn Emit = nullptr;
void *EmitCtx = nullptr;
std::atomic<std::uint64_t> CycleCount{0};
bool HandlersInstalled = false;

const char *artifactSuffix(int A) {
  switch (A) {
  case StatsExporter::MetricsJson:
    return ".metrics.json";
  case StatsExporter::Prometheus:
    return ".prom";
  case StatsExporter::HeapProfile:
    return ".heap";
  default:
    return ".out";
  }
}

/// Appends \p Src to \p Dst (capacity \p Cap, always NUL-terminated).
void appendStr(char *Dst, std::size_t Cap, const char *Src) {
  std::size_t At = std::strlen(Dst);
  while (At + 1 < Cap && *Src != '\0')
    Dst[At++] = *Src++;
  Dst[At] = '\0';
}

/// One export cycle: write each artifact to <prefix><suffix>.tmp, then
/// rename over <prefix><suffix>. A skipped or failed artifact leaves the
/// previous snapshot file untouched.
int exportCycle(const char *Pfx, StatsExporter::EmitFn E, void *Ctx) {
  int FirstErr = 0;
  for (int A = 0; A < StatsExporter::NumArtifacts; ++A) {
    char Final[PrefixMax + 32];
    std::snprintf(Final, sizeof(Final), "%s%s", Pfx, artifactSuffix(A));
    char Tmp[sizeof(Final) + 4];
    std::snprintf(Tmp, sizeof(Tmp), "%s.tmp", Final);
    const int Fd = ::open(Tmp, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (Fd < 0) {
      if (FirstErr == 0)
        FirstErr = errno != 0 ? errno : EIO;
      continue;
    }
    const int RC = E(Ctx, A, Fd);
    ::close(Fd);
    if (RC == 0) {
      if (::rename(Tmp, Final) != 0 && FirstErr == 0)
        FirstErr = errno != 0 ? errno : EIO;
    } else {
      ::unlink(Tmp); // Artifact skipped this cycle (e.g. profiler off).
    }
  }
  return FirstErr;
}

void *exporterMain(void *) {
  detail::OnExporterThread = true;
  pthread_mutex_lock(&Mu);
  while (!StopRequested) {
    timespec Deadline;
    clock_gettime(CLOCK_MONOTONIC, &Deadline);
    Deadline.tv_sec += static_cast<time_t>(IntervalMs / 1000);
    Deadline.tv_nsec += static_cast<long>((IntervalMs % 1000) * 1'000'000);
    if (Deadline.tv_nsec >= 1'000'000'000) {
      Deadline.tv_sec += 1;
      Deadline.tv_nsec -= 1'000'000'000;
    }
    int RC = 0;
    while (!StopRequested && RC != ETIMEDOUT)
      RC = pthread_cond_timedwait(&Cv, &Mu, &Deadline);
    if (StopRequested)
      break;
    char Pfx[PrefixMax];
    std::memcpy(Pfx, Prefix, PrefixMax);
    const StatsExporter::EmitFn E = Emit;
    void *Ctx = EmitCtx;
    pthread_mutex_unlock(&Mu);
    exportCycle(Pfx, E, Ctx);
    CycleCount.fetch_add(1, std::memory_order_release);
    pthread_mutex_lock(&Mu);
  }
  pthread_mutex_unlock(&Mu);
  return nullptr;
}

void stopAtExit() { StatsExporter::stop(); }

// fork() integration: take Mu across the fork so the child never inherits
// it mid-critical-section, then rebuild the child's state from scratch —
// the exporter thread does not exist in the child.
void atforkPrepare() { pthread_mutex_lock(&Mu); }
void atforkParent() { pthread_mutex_unlock(&Mu); }
void atforkChild() {
  pthread_mutex_init(&Mu, nullptr);
  CvInitialized = false;
  Running = false;
  StopRequested = false;
  CycleCount.store(0, std::memory_order_relaxed);
  detail::OnExporterThread = false;
}

void ensureCv() {
  if (CvInitialized)
    return;
  pthread_condattr_t Attr;
  pthread_condattr_init(&Attr);
  pthread_condattr_setclock(&Attr, CLOCK_MONOTONIC);
  pthread_cond_init(&Cv, &Attr);
  pthread_condattr_destroy(&Attr);
  CvInitialized = true;
}

} // namespace

int StatsExporter::start(std::uint64_t Interval, const char *Pfx, EmitFn E,
                         void *Ctx) {
  if (Interval == 0 || E == nullptr)
    return EINVAL;
  pthread_mutex_lock(&Mu);
  if (Running) {
    pthread_mutex_unlock(&Mu);
    return EALREADY;
  }
  ensureCv();
  if (Pfx != nullptr && *Pfx != '\0') {
    Prefix[0] = '\0';
    appendStr(Prefix, sizeof(Prefix), Pfx);
  }
  IntervalMs = Interval;
  Emit = E;
  EmitCtx = Ctx;
  StopRequested = false;
  const int RC = pthread_create(&Thread, nullptr, exporterMain, nullptr);
  if (RC != 0) {
    pthread_mutex_unlock(&Mu);
    return RC;
  }
  Running = true;
  if (!HandlersInstalled) {
    HandlersInstalled = true;
    pthread_atfork(atforkPrepare, atforkParent, atforkChild);
    std::atexit(stopAtExit);
  }
  pthread_mutex_unlock(&Mu);
  return 0;
}

int StatsExporter::stop() {
  pthread_mutex_lock(&Mu);
  if (!Running) {
    pthread_mutex_unlock(&Mu);
    return 0;
  }
  StopRequested = true;
  pthread_cond_broadcast(&Cv);
  pthread_mutex_unlock(&Mu);
  pthread_join(Thread, nullptr);
  pthread_mutex_lock(&Mu);
  Running = false;
  StopRequested = false;
  pthread_mutex_unlock(&Mu);
  return 0;
}

bool StatsExporter::running() {
  pthread_mutex_lock(&Mu);
  const bool R = Running;
  pthread_mutex_unlock(&Mu);
  return R;
}

std::uint64_t StatsExporter::cycles() {
  return CycleCount.load(std::memory_order_acquire);
}

int StatsExporter::runCycleNow(const char *Pfx, EmitFn E, void *Ctx) {
  if (E == nullptr)
    return EINVAL;
  char Local[PrefixMax];
  Local[0] = '\0';
  appendStr(Local, sizeof(Local),
            (Pfx != nullptr && *Pfx != '\0') ? Pfx : "lfm-stats");
  const bool Was = detail::OnExporterThread;
  detail::OnExporterThread = true;
  const int RC = exportCycle(Local, E, Ctx);
  detail::OnExporterThread = Was;
  CycleCount.fetch_add(1, std::memory_order_release);
  return RC;
}

bool StatsExporter::waitForCycles(std::uint64_t MinCycles,
                                  std::uint64_t TimeoutMs) {
  timespec Deadline;
  clock_gettime(CLOCK_MONOTONIC, &Deadline);
  Deadline.tv_sec += static_cast<time_t>(TimeoutMs / 1000);
  Deadline.tv_nsec += static_cast<long>((TimeoutMs % 1000) * 1'000'000);
  if (Deadline.tv_nsec >= 1'000'000'000) {
    Deadline.tv_sec += 1;
    Deadline.tv_nsec -= 1'000'000'000;
  }
  for (;;) {
    if (cycles() >= MinCycles)
      return true;
    timespec Now;
    clock_gettime(CLOCK_MONOTONIC, &Now);
    if (Now.tv_sec > Deadline.tv_sec ||
        (Now.tv_sec == Deadline.tv_sec && Now.tv_nsec >= Deadline.tv_nsec))
      return cycles() >= MinCycles;
    const timespec Nap = {0, 1'000'000}; // 1 ms
    nanosleep(&Nap, nullptr);
  }
}

} // namespace telemetry
} // namespace lfm
