//===- baselines/HoardLike.h - Hoard-style lock-based baseline ---*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reimplementation of Hoard's algorithm (Berger et al. [3]; the paper's
/// §2.2 summary): per-processor heaps plus a global heap, superblocks of
/// same-sized blocks, per-superblock and per-heap fullness statistics, and
/// the emptiness invariant that bounds blowup — when a processor heap has
/// too much available space, one of its superblocks moves to the global
/// heap. "Typically, malloc and free require one and two lock
/// acquisitions, respectively."
///
/// Locks are the same lightweight TasLock the paper substituted into Hoard
/// for its measurements, so the comparison against the lock-free allocator
/// is the paper's comparison.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_BASELINES_HOARDLIKE_H
#define LFMALLOC_BASELINES_HOARDLIKE_H

#include "baselines/AllocatorInterface.h"
#include "lfmalloc/SizeClasses.h"
#include "support/SpinLock.h"

#include <cstdint>

namespace lfm {

/// Hoard-style allocator: heap 0 is the global heap, heaps 1..P are
/// processor heaps selected by thread id.
class HoardLike final : public MallocInterface {
public:
  /// \param NumProcessors number of processor heaps (>= 1).
  explicit HoardLike(unsigned NumProcessors);
  ~HoardLike() override;

  void *malloc(std::size_t Bytes) override;
  void free(void *Ptr) override;
  const char *name() const override { return "hoard"; }
  PageStats pageStats() const override { return Pages.stats(); }
  void resetPeak() override { Pages.resetPeak(); }

  /// Emptiness-invariant parameters (Hoard's K and f): a processor heap
  /// sheds a superblock to the global heap when it holds more than
  /// EmptyK superblocks' worth of unused space AND less than
  /// (1 - 1/EmptyFracDenom) of its space is in use.
  static constexpr std::uint32_t EmptyK = 4;
  static constexpr std::uint32_t EmptyFracDenom = 4;

  /// Superblock size (matches the lock-free allocator's default).
  static constexpr std::size_t SbBytes = 16 * 1024;

private:
  struct Superblock;
  struct Heap;

  Superblock *newSuperblock(unsigned Class);
  void *popBlock(Superblock *Sb);
  static void pushBlock(Superblock *Sb, void *Block);
  void unlink(Heap *H, Superblock *Sb);
  void linkPartial(Heap *H, Superblock *Sb);
  void linkFull(Heap *H, Superblock *Sb);
  void transferToGlobal(Heap *From, Superblock *Sb);
  Heap *myHeap();

  PageAllocator Pages;
  const unsigned NumHeaps; ///< Processor heaps (excluding global).
  Heap *Heaps = nullptr;   ///< [NumHeaps + 1]; index 0 is global.
  std::size_t HeapsBytes = 0;
};

} // namespace lfm

#endif // LFMALLOC_BASELINES_HOARDLIKE_H
