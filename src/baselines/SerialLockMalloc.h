//===- baselines/SerialLockMalloc.h - Global-lock baseline -------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "libc malloc" stand-in: a fast sequential allocator behind a single
/// lightweight lock — the paper's description of the baseline class of
/// MT-safe allocators, "ranging from the use of a single lock wrapped
/// around single-thread malloc and free" (§1). The paper's Fig. 8 shows
/// this design "does not scale at all"; reproducing that collapse is this
/// class's entire job.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_BASELINES_SERIALLOCKMALLOC_H
#define LFMALLOC_BASELINES_SERIALLOCKMALLOC_H

#include "baselines/AllocatorInterface.h"
#include "baselines/SeqAlloc.h"
#include "support/SpinLock.h"

namespace lfm {

/// Single-lock MT-safe allocator.
class SerialLockMalloc final : public MallocInterface {
public:
  SerialLockMalloc() : Engine(Pages) {}

  void *malloc(std::size_t Bytes) override;
  void free(void *Ptr) override;
  const char *name() const override { return "libc"; }
  PageStats pageStats() const override { return Pages.stats(); }
  void resetPeak() override { Pages.resetPeak(); }

private:
  PageAllocator Pages;
  TasLock Lock;
  SeqAlloc Engine;
};

} // namespace lfm

#endif // LFMALLOC_BASELINES_SERIALLOCKMALLOC_H
