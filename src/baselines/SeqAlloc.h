//===- baselines/SeqAlloc.h - Sequential segregated-fit engine ---*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fast *single-threaded* segregated-fit allocator in the Doug Lea
/// lineage (the paper's reference [14] is the substrate under Ptmalloc).
/// It is the engine inside the lock-based baselines: SerialLockMalloc
/// wraps one instance behind one lock (the "libc malloc" stand-in), and
/// each PtmallocLike arena owns one.
///
/// Design: per-size-class free lists threaded through the blocks
/// themselves, a bump region for carving fresh blocks, and no coalescing
/// (the benchmark block sizes are small and recycled heavily, which is the
/// regime the paper's workloads exercise). Uses the same size-class table
/// as the lock-free allocator so internal fragmentation is identical
/// across all contenders — differences in the experiments then isolate
/// synchronization design, not class geometry.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_BASELINES_SEQALLOC_H
#define LFMALLOC_BASELINES_SEQALLOC_H

#include "lfmalloc/SizeClasses.h"
#include "os/PageAllocator.h"

#include <cstdint>

namespace lfm {

/// Not thread-safe; callers serialize externally (that is the point of the
/// baselines built on it). Handles size-class blocks only; callers route
/// large requests to the OS themselves.
class SeqAlloc {
public:
  /// \param Pages provider charged for the regions.
  /// \param RegionBytes granularity of OS requests. SerialLockMalloc uses
  /// the default; PtmallocLike arenas use a larger value to model glibc's
  /// per-arena heap reservations, whose granularity is what makes many
  /// arenas expensive in space (paper §4.2.5).
  explicit SeqAlloc(PageAllocator &Pages,
                    std::size_t RegionBytes = DefaultRegionBytes)
      : Pages(Pages), RegionBytes(RegionBytes) {
    assert(RegionBytes >= OsPageSize && RegionBytes % OsPageSize == 0 &&
           "region size must be whole pages");
  }
  SeqAlloc(const SeqAlloc &) = delete;
  SeqAlloc &operator=(const SeqAlloc &) = delete;

  /// Unmaps all regions; outstanding blocks are invalidated.
  ~SeqAlloc();

  /// \returns a block of classBlockSize(Class) bytes (prefix included;
  /// the caller owns the prefix byte layout), or nullptr on OS OOM.
  void *allocateBlock(unsigned Class);

  /// Returns a block previously handed out for \p Class.
  void freeBlock(void *Block, unsigned Class);

  /// Blocks carved but currently free (for tests).
  std::uint64_t freeBlockCount() const;

private:
  /// Free blocks are linked through their first word.
  struct FreeBlock {
    FreeBlock *Next;
  };

  struct Region {
    Region *Next;
  };

  /// Default fresh-region size: large enough to amortize mmap, small
  /// enough that a near-idle engine does not hoard memory.
  static constexpr std::size_t DefaultRegionBytes = 64 * 1024;

  PageAllocator &Pages;
  const std::size_t RegionBytes;
  FreeBlock *Bins[NumSizeClasses] = {};
  std::uint64_t BinCounts[NumSizeClasses] = {};
  char *BumpPtr = nullptr;
  char *BumpEnd = nullptr;
  Region *Regions = nullptr;
};

} // namespace lfm

#endif // LFMALLOC_BASELINES_SEQALLOC_H
