//===- baselines/HoardLike.cpp - Hoard-style lock-based baseline ----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "baselines/HoardLike.h"

#include "support/ThreadRegistry.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <new>

using namespace lfm;

namespace {

constexpr std::uint64_t LargeBit = 1;

std::uint64_t &blockWord(void *Block) {
  return *static_cast<std::uint64_t *>(Block);
}

} // namespace

/// Superblock header, living in the superblock's first bytes. Guarded by
/// the owner heap's lock (ownership migrates under both heaps' locks).
struct HoardLike::Superblock {
  Superblock *Prev;
  Superblock *Next;
  std::atomic<Heap *> Owner;
  std::uint32_t Class;
  std::uint32_t BlockSize;
  std::uint32_t MaxCount;
  std::uint32_t Used;    ///< Allocated blocks.
  void *FreeHead;        ///< Freed blocks, linked through first words.
  char *Bump;            ///< Not-yet-carved tail.
  char *End;
};

/// One heap: lock, per-class superblock lists, fullness statistics.
struct alignas(CacheLineSize) HoardLike::Heap {
  TasLock Lock;
  Superblock *Partial[NumSizeClasses];
  Superblock *Full[NumSizeClasses];
  std::uint64_t UsedBytes;  ///< u(i): bytes in allocated blocks.
  std::uint64_t AllocBytes; ///< a(i): bytes in owned superblocks.
  bool IsGlobal;
};

HoardLike::HoardLike(unsigned NumProcessors)
    : NumHeaps(NumProcessors ? NumProcessors : 1) {
  HeapsBytes = sizeof(Heap) * (NumHeaps + 1);
  void *Raw = Pages.map(HeapsBytes);
  if (!Raw) {
    std::fprintf(stderr, "lfmalloc: cannot map Hoard heaps\n");
    std::abort();
  }
  Heaps = static_cast<Heap *>(Raw);
  for (unsigned I = 0; I <= NumHeaps; ++I) {
    Heap *H = new (&Heaps[I]) Heap();
    H->IsGlobal = I == 0;
  }
}

HoardLike::~HoardLike() {
  // Unmap every owned superblock, then the heap array. Quiescent teardown;
  // outstanding blocks are invalidated.
  for (unsigned I = 0; I <= NumHeaps; ++I) {
    for (unsigned C = 0; C < NumSizeClasses; ++C) {
      for (Superblock *Sb = Heaps[I].Partial[C]; Sb;) {
        Superblock *Next = Sb->Next;
        Pages.unmap(Sb, SbBytes);
        Sb = Next;
      }
      for (Superblock *Sb = Heaps[I].Full[C]; Sb;) {
        Superblock *Next = Sb->Next;
        Pages.unmap(Sb, SbBytes);
        Sb = Next;
      }
    }
    Heaps[I].~Heap();
  }
  Pages.unmap(Heaps, HeapsBytes);
}

HoardLike::Heap *HoardLike::myHeap() {
  return &Heaps[1 + threadIndex() % NumHeaps];
}

HoardLike::Superblock *HoardLike::newSuperblock(unsigned Class) {
  void *Raw = Pages.map(SbBytes);
  if (!Raw)
    return nullptr;
  auto *Sb = new (Raw) Superblock();
  Sb->Class = Class;
  Sb->BlockSize = classBlockSize(Class);
  Sb->Bump = static_cast<char *>(Raw) +
             alignUp(sizeof(Superblock), BlockPrefixSize * 2);
  Sb->End = static_cast<char *>(Raw) + SbBytes;
  Sb->MaxCount =
      static_cast<std::uint32_t>((Sb->End - Sb->Bump) / Sb->BlockSize);
  return Sb;
}

void *HoardLike::popBlock(Superblock *Sb) {
  void *Block = Sb->FreeHead;
  if (Block) {
    Sb->FreeHead = *static_cast<void **>(Block);
  } else {
    assert(Sb->Bump + Sb->BlockSize <= Sb->End && "pop from full superblock");
    Block = Sb->Bump;
    Sb->Bump += Sb->BlockSize;
  }
  ++Sb->Used;
  return Block;
}

void HoardLike::pushBlock(Superblock *Sb, void *Block) {
  *static_cast<void **>(Block) = Sb->FreeHead;
  Sb->FreeHead = Block;
  --Sb->Used;
}

void HoardLike::unlink(Heap *H, Superblock *Sb) {
  Superblock **Head = Sb->Used == Sb->MaxCount ? &H->Full[Sb->Class]
                                               : &H->Partial[Sb->Class];
  if (Sb->Prev)
    Sb->Prev->Next = Sb->Next;
  else
    *Head = Sb->Next;
  if (Sb->Next)
    Sb->Next->Prev = Sb->Prev;
  Sb->Prev = Sb->Next = nullptr;
}

void HoardLike::linkPartial(Heap *H, Superblock *Sb) {
  Sb->Prev = nullptr;
  Sb->Next = H->Partial[Sb->Class];
  if (Sb->Next)
    Sb->Next->Prev = Sb;
  H->Partial[Sb->Class] = Sb;
}

void HoardLike::linkFull(Heap *H, Superblock *Sb) {
  Sb->Prev = nullptr;
  Sb->Next = H->Full[Sb->Class];
  if (Sb->Next)
    Sb->Next->Prev = Sb;
  H->Full[Sb->Class] = Sb;
}

void *HoardLike::malloc(std::size_t Bytes) {
  const unsigned Class = sizeToClass(Bytes);
  if (Class == LargeSizeClass) {
    const std::size_t Total = alignUp(Bytes + BlockPrefixSize, OsPageSize);
    void *Block = Pages.map(Total);
    if (!Block)
      return nullptr;
    blockWord(Block) = Total | LargeBit;
    return static_cast<char *>(Block) + BlockPrefixSize;
  }

  Heap *H = myHeap();
  H->Lock.lock(); // Lock acquisition #1 (the typical malloc's only one).
  Superblock *Sb = H->Partial[Class];
  if (!Sb) {
    // Check the global heap for a superblock of this class before going
    // to the OS (Hoard's reuse path).
    Heap *G = &Heaps[0];
    G->Lock.lock();
    Sb = G->Partial[Class];
    if (Sb) {
      unlink(G, Sb);
      G->AllocBytes -= SbBytes;
      G->UsedBytes -=
          static_cast<std::uint64_t>(Sb->Used) * Sb->BlockSize;
      // Publish the new owner before releasing the global lock: a racing
      // free() revalidates Owner under the lock it took, so the handover
      // must be atomic with the unlink.
      Sb->Owner.store(H, std::memory_order_relaxed);
    }
    G->Lock.unlock();
    if (!Sb) {
      Sb = newSuperblock(Class);
      if (!Sb) {
        H->Lock.unlock();
        return nullptr;
      }
      Sb->Owner.store(H, std::memory_order_relaxed);
    }
    linkPartial(H, Sb);
    H->AllocBytes += SbBytes;
    H->UsedBytes += static_cast<std::uint64_t>(Sb->Used) * Sb->BlockSize;
  }

  void *Block = popBlock(Sb);
  H->UsedBytes += Sb->BlockSize;
  if (Sb->Used == Sb->MaxCount) {
    // Became full: move from the partial list to the full list.
    if (Sb->Prev)
      Sb->Prev->Next = Sb->Next;
    else
      H->Partial[Class] = Sb->Next;
    if (Sb->Next)
      Sb->Next->Prev = Sb->Prev;
    linkFull(H, Sb);
  }
  H->Lock.unlock();

  blockWord(Block) = reinterpret_cast<std::uint64_t>(Sb);
  return static_cast<char *>(Block) + BlockPrefixSize;
}

void HoardLike::free(void *Ptr) {
  if (!Ptr)
    return;
  void *Block = static_cast<char *>(Ptr) - BlockPrefixSize;
  const std::uint64_t Prefix = blockWord(Block);
  if (Prefix & LargeBit) {
    Pages.unmap(Block, Prefix & ~LargeBit);
    return;
  }
  auto *Sb = reinterpret_cast<Superblock *>(Prefix);

  // Lock acquisition #1: the superblock's current owner. Ownership can
  // migrate between our read and the lock, so revalidate under the lock.
  Heap *Owner;
  for (;;) {
    Owner = Sb->Owner.load(std::memory_order_relaxed);
    Owner->Lock.lock();
    if (Sb->Owner.load(std::memory_order_relaxed) == Owner)
      break;
    Owner->Lock.unlock();
  }

  const bool WasFull = Sb->Used == Sb->MaxCount;
  pushBlock(Sb, Block);
  Owner->UsedBytes -= Sb->BlockSize;
  if (WasFull) {
    if (Sb->Prev)
      Sb->Prev->Next = Sb->Next;
    else
      Owner->Full[Sb->Class] = Sb->Next;
    if (Sb->Next)
      Sb->Next->Prev = Sb->Prev;
    linkPartial(Owner, Sb);
  }

  // Hoard's emptiness invariant: if this processor heap holds more than
  // EmptyK superblocks of slack AND under (1 - 1/EmptyFracDenom) of its
  // space is used, shed a mostly-empty superblock to the global heap
  // (lock acquisition #2 — "free ... two lock acquisitions").
  if (!Owner->IsGlobal &&
      Owner->UsedBytes + EmptyK * SbBytes < Owner->AllocBytes &&
      EmptyFracDenom * Owner->UsedBytes <
          (EmptyFracDenom - 1) * Owner->AllocBytes) {
    // Pick the emptiest of the first few partial superblocks of this
    // class (Hoard's fullness groups make this O(1); a bounded scan is
    // the honest approximation).
    Superblock *Emptiest = nullptr;
    unsigned Scanned = 0;
    for (Superblock *S = Owner->Partial[Sb->Class]; S && Scanned < 8;
         S = S->Next, ++Scanned)
      if (!Emptiest || S->Used < Emptiest->Used)
        Emptiest = S;
    if (Emptiest)
      transferToGlobal(Owner, Emptiest);
  }
  Owner->Lock.unlock();
}

void HoardLike::transferToGlobal(Heap *From, Superblock *Sb) {
  unlink(From, Sb);
  From->AllocBytes -= SbBytes;
  From->UsedBytes -= static_cast<std::uint64_t>(Sb->Used) * Sb->BlockSize;
  Heap *G = &Heaps[0];
  G->Lock.lock();
  Sb->Owner.store(G, std::memory_order_relaxed);
  linkPartial(G, Sb);
  G->AllocBytes += SbBytes;
  G->UsedBytes += static_cast<std::uint64_t>(Sb->Used) * Sb->BlockSize;
  G->Lock.unlock();
}
