//===- baselines/SeqAlloc.cpp - Sequential segregated-fit engine ----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "baselines/SeqAlloc.h"

#include <cassert>
#include <new>

using namespace lfm;

SeqAlloc::~SeqAlloc() {
  Region *R = Regions;
  while (R) {
    Region *Next = R->Next;
    Pages.unmap(R, RegionBytes);
    R = Next;
  }
}

void *SeqAlloc::allocateBlock(unsigned Class) {
  assert(Class < NumSizeClasses && "size class out of range");
  if (FreeBlock *Block = Bins[Class]) {
    Bins[Class] = Block->Next;
    --BinCounts[Class];
    return Block;
  }

  const std::uint32_t Size = classBlockSize(Class);
  if (static_cast<std::size_t>(BumpEnd - BumpPtr) < Size) {
    // The bump remainder is too small for this class; bin it for the
    // largest class it can still serve so it is not wasted.
    while (BumpEnd - BumpPtr >= 16) {
      const std::size_t Left = static_cast<std::size_t>(BumpEnd - BumpPtr);
      unsigned C = NumSizeClasses - 1;
      while (classBlockSize(C) > Left)
        --C; // Largest class that fits the remainder.
      auto *Scrap = new (BumpPtr) FreeBlock{Bins[C]};
      Bins[C] = Scrap;
      ++BinCounts[C];
      BumpPtr += classBlockSize(C);
    }
    void *Raw = Pages.map(RegionBytes);
    if (!Raw)
      return nullptr;
    auto *R = new (Raw) Region{Regions};
    Regions = R;
    BumpPtr = static_cast<char *>(Raw) + BlockPrefixSize * 2; // Header pad.
    BumpEnd = static_cast<char *>(Raw) + RegionBytes;
  }
  void *Block = BumpPtr;
  BumpPtr += Size;
  return Block;
}

void SeqAlloc::freeBlock(void *Block, unsigned Class) {
  assert(Block && Class < NumSizeClasses && "bad free");
  auto *FB = new (Block) FreeBlock{Bins[Class]};
  Bins[Class] = FB;
  ++BinCounts[Class];
}

std::uint64_t SeqAlloc::freeBlockCount() const {
  std::uint64_t Total = 0;
  for (std::uint64_t C : BinCounts)
    Total += C;
  return Total;
}
