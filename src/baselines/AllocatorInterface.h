//===- baselines/AllocatorInterface.h - Uniform malloc interface -*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark harness drives every contender — the lock-free allocator
/// and the three lock-based baselines — through this one interface, so a
/// measured difference is a difference between allocators, not between
/// harness paths. The virtual-dispatch cost is identical for everyone.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_BASELINES_ALLOCATORINTERFACE_H
#define LFMALLOC_BASELINES_ALLOCATORINTERFACE_H

#include "os/PageAllocator.h"

#include <cstddef>
#include <cstdio>
#include <memory>

namespace lfm {

class LFAllocator;

/// Abstract malloc/free pair with a space meter.
class MallocInterface {
public:
  virtual ~MallocInterface() = default;

  /// malloc(). \returns at least \p Bytes of storage or nullptr.
  virtual void *malloc(std::size_t Bytes) = 0;

  /// free(). Accepts null and blocks allocated by any thread.
  virtual void free(void *Ptr) = 0;

  /// Display name for benchmark tables ("new", "hoard", "ptmalloc",
  /// "libc").
  virtual const char *name() const = 0;

  /// Space meter covering everything this allocator mapped (§4.2.5).
  virtual PageStats pageStats() const = 0;

  /// Resets the peak-space watermark between benchmark phases.
  virtual void resetPeak() = 0;

  /// Writes one newline-terminated JSON object describing this
  /// allocator's state to \p Out. Baselines report their name and space
  /// meter; the lock-free allocator emits its full telemetry snapshot.
  /// Used by the harness's --metrics-json output.
  virtual void writeMetricsJson(std::FILE *Out) const;

  /// Writes this allocator's recorded event trace as Chrome trace JSON.
  /// Baselines record nothing and emit an empty (but valid) trace; the
  /// lock-free allocator reports its rings when built with EnableTrace.
  /// Used by the harness's --trace-json output.
  virtual void writeTraceJson(std::FILE *Out) const;

  /// The underlying LFAllocator when this contender is lock-free, null
  /// for the baselines. Benches use it for introspection that has no
  /// baseline equivalent (heap topology, fragmentation metrics).
  virtual LFAllocator *lockFreeAllocator() { return nullptr; }
};

/// The contenders of the paper's Section 4.
enum class AllocatorKind {
  LockFree,    ///< The paper's allocator ("new" in the tables).
  LockFreeUni, ///< §4.2.4 uniprocessor variant (one heap, no thread ids).
  SerialLock,  ///< Global-lock sequential allocator: the libc stand-in.
  Hoard,       ///< Hoard-like processor-heap allocator (Berger [3]).
  Ptmalloc,    ///< Ptmalloc-like arena allocator (Gloger [6]).
};

/// \returns the printable name benchmarks use for \p Kind.
const char *allocatorKindName(AllocatorKind Kind);

/// Creates a fresh allocator of \p Kind sized for \p NumProcessors
/// processor heaps / arenas (ignored where not meaningful).
std::unique_ptr<MallocInterface> makeAllocator(AllocatorKind Kind,
                                               unsigned NumProcessors);

struct AllocatorOptions;

/// Creates a lock-free allocator with explicit options behind the common
/// interface (the ablation benches sweep superblock size, partial-list
/// policy, credits limit, and hyperblock batching this way). \p Name is
/// the label benches print; it must outlive the allocator.
std::unique_ptr<MallocInterface>
makeLockFreeAllocator(const AllocatorOptions &Opts, const char *Name);

} // namespace lfm

#endif // LFMALLOC_BASELINES_ALLOCATORINTERFACE_H
