//===- baselines/AllocatorInterface.cpp - Uniform malloc interface --------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "baselines/AllocatorInterface.h"

#include "baselines/HoardLike.h"
#include "baselines/PtmallocLike.h"
#include "baselines/SerialLockMalloc.h"
#include "lfmalloc/LFAllocator.h"

#include <cassert>

using namespace lfm;

namespace {

/// Adapter putting the lock-free allocator behind the common interface.
class LockFreeAdapter final : public MallocInterface {
public:
  LockFreeAdapter(unsigned NumHeaps, const char *Name)
      : Name(Name), Alloc(makeOptions(NumHeaps)) {}

  LockFreeAdapter(const AllocatorOptions &Opts, const char *Name)
      : Name(Name), Alloc(Opts) {}

  void *malloc(std::size_t Bytes) override { return Alloc.allocate(Bytes); }
  void free(void *Ptr) override { Alloc.deallocate(Ptr); }
  const char *name() const override { return Name; }
  PageStats pageStats() const override { return Alloc.pageStats(); }
  void resetPeak() override { Alloc.resetPeakSpace(); }
  void writeMetricsJson(std::FILE *Out) const override {
    Alloc.metricsJson(Out);
  }
  void writeTraceJson(std::FILE *Out) const override {
    Alloc.traceJson(Out);
  }
  LFAllocator *lockFreeAllocator() override { return &Alloc; }

  LFAllocator &allocator() { return Alloc; }

private:
  static AllocatorOptions makeOptions(unsigned NumHeaps) {
    AllocatorOptions Opts;
    Opts.NumHeaps = NumHeaps;
    return Opts;
  }

  const char *Name;
  LFAllocator Alloc;
};

} // namespace

// Baselines have no telemetry block; their space meter is still worth
// recording next to the lock-free allocator's in --metrics-json output.
// (Allocator names are fixed identifiers, so no JSON escaping is needed.)
void MallocInterface::writeMetricsJson(std::FILE *Out) const {
  const PageStats S = pageStats();
  std::fprintf(Out,
               "{\"allocator\": \"%s\", \"space\": {\"bytes_in_use\": %llu, "
               "\"peak_bytes\": %llu}}\n",
               name(), static_cast<unsigned long long>(S.BytesInUse),
               static_cast<unsigned long long>(S.PeakBytes));
}

void MallocInterface::writeTraceJson(std::FILE *Out) const {
  std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}\n", Out);
}

const char *lfm::allocatorKindName(AllocatorKind Kind) {
  switch (Kind) {
  case AllocatorKind::LockFree:
    return "new";
  case AllocatorKind::LockFreeUni:
    return "new-uni";
  case AllocatorKind::SerialLock:
    return "libc";
  case AllocatorKind::Hoard:
    return "hoard";
  case AllocatorKind::Ptmalloc:
    return "ptmalloc";
  }
  assert(false && "unknown allocator kind");
  return "?";
}

std::unique_ptr<MallocInterface> lfm::makeAllocator(AllocatorKind Kind,
                                                    unsigned NumProcessors) {
  switch (Kind) {
  case AllocatorKind::LockFree:
    return std::make_unique<LockFreeAdapter>(NumProcessors, "new");
  case AllocatorKind::LockFreeUni:
    return std::make_unique<LockFreeAdapter>(1u, "new-uni");
  case AllocatorKind::SerialLock:
    return std::make_unique<SerialLockMalloc>();
  case AllocatorKind::Hoard:
    return std::make_unique<HoardLike>(NumProcessors);
  case AllocatorKind::Ptmalloc:
    return std::make_unique<PtmallocLike>(NumProcessors);
  }
  assert(false && "unknown allocator kind");
  return nullptr;
}

std::unique_ptr<MallocInterface>
lfm::makeLockFreeAllocator(const AllocatorOptions &Opts, const char *Name) {
  return std::make_unique<LockFreeAdapter>(Opts, Name);
}
