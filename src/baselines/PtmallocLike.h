//===- baselines/PtmallocLike.h - Ptmalloc-style arena baseline --*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reimplementation of Ptmalloc's concurrency scheme (Gloger [6]; paper
/// §2.2): "It uses multiple arenas ... The granularity of locking is the
/// arena. If a thread executing malloc finds an arena locked, it tries the
/// next one. If all arenas are found to be locked, the thread creates a
/// new arena ... each thread keeps thread-specific information about the
/// arena it used in its last malloc. When a thread frees a chunk, it
/// returns the chunk to the arena from which the chunk was originally
/// allocated, and the thread must acquire that arena's lock."
///
/// Locks are the lightweight TasLock, matching the paper's optimized
/// Ptmalloc configuration (it replaced pthread mutexes with hand-coded
/// lightweight locks and measured >50% latency reduction).
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_BASELINES_PTMALLOCLIKE_H
#define LFMALLOC_BASELINES_PTMALLOCLIKE_H

#include "baselines/AllocatorInterface.h"
#include "baselines/SeqAlloc.h"
#include "support/SpinLock.h"

#include <atomic>
#include <cstdint>

namespace lfm {

/// Arena-based lock-per-arena allocator.
class PtmallocLike final : public MallocInterface {
public:
  /// \param InitialArenas arenas created up front (ptmalloc grows the set
  /// on contention; the paper observed 22 arenas for 16 threads under
  /// Larson).
  explicit PtmallocLike(unsigned InitialArenas);
  ~PtmallocLike() override;

  void *malloc(std::size_t Bytes) override;
  void free(void *Ptr) override;
  const char *name() const override { return "ptmalloc"; }
  PageStats pageStats() const override { return Pages.stats(); }
  void resetPeak() override { Pages.resetPeak(); }

  /// \returns how many arenas exist right now (grows under contention;
  /// the Larson bench reports this, as the paper does).
  unsigned arenaCount() const {
    return NumArenas.load(std::memory_order_relaxed);
  }

  /// Hard cap on arena creation; beyond it threads block on their arena.
  static constexpr unsigned MaxArenas = 64;

private:
  struct Arena;

  Arena *createArena();
  Arena *lockSomeArena();

  PageAllocator Pages;
  std::atomic<Arena *> Arenas{nullptr}; ///< Singly linked, newest first.
  std::atomic<unsigned> NumArenas{0};

  /// Per-thread last-arena hints, indexed by threadIndex() modulo the
  /// table size. Racy by design (a wrong hint only costs a tryLock miss).
  static constexpr unsigned HintSlots = 1024;
  std::atomic<Arena *> Hints[HintSlots] = {};
};

} // namespace lfm

#endif // LFMALLOC_BASELINES_PTMALLOCLIKE_H
