//===- baselines/PtmallocLike.cpp - Ptmalloc-style arena baseline ---------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "baselines/PtmallocLike.h"

#include "lfmalloc/SizeClasses.h"
#include "support/ThreadRegistry.h"

#include <cstdio>
#include <cstdlib>
#include <new>

using namespace lfm;

namespace {

constexpr std::uint64_t LargeBit = 1;
constexpr unsigned ArenaPtrBits = 48;
constexpr std::uint64_t ArenaPtrMask = (1ULL << ArenaPtrBits) - 1;

std::uint64_t &blockWord(void *Block) {
  return *static_cast<std::uint64_t *>(Block);
}

} // namespace

/// One arena: a lock around a sequential segregated-fit engine.
struct alignas(CacheLineSize) PtmallocLike::Arena {
  /// glibc arenas reserve memory in large per-arena heaps; 256 KB regions
  /// model that granularity (the space cost of "22 arenas for 16
  /// threads", paper §4.2.2/§4.2.5).
  static constexpr std::size_t ArenaRegionBytes = 256 * 1024;

  explicit Arena(PageAllocator &Pages) : Engine(Pages, ArenaRegionBytes) {}

  TasLock Lock;
  SeqAlloc Engine;
  Arena *Next = nullptr;
};

PtmallocLike::PtmallocLike(unsigned InitialArenas) {
  if (InitialArenas == 0)
    InitialArenas = 1;
  for (unsigned I = 0; I < InitialArenas; ++I)
    createArena();
}

PtmallocLike::~PtmallocLike() {
  Arena *A = Arenas.load(std::memory_order_relaxed);
  while (A) {
    Arena *Next = A->Next;
    A->~Arena(); // Releases the engine's regions.
    Pages.unmap(A, alignUp(sizeof(Arena), OsPageSize));
    A = Next;
  }
}

PtmallocLike::Arena *PtmallocLike::createArena() {
  void *Raw = Pages.map(alignUp(sizeof(Arena), OsPageSize));
  if (!Raw) {
    std::fprintf(stderr, "lfmalloc: cannot map ptmalloc arena\n");
    std::abort();
  }
  auto *A = new (Raw) Arena(Pages);
  A->Next = Arenas.load(std::memory_order_relaxed);
  while (!Arenas.compare_exchange_weak(A->Next, A,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
  }
  NumArenas.fetch_add(1, std::memory_order_relaxed);
  return A;
}

PtmallocLike::Arena *PtmallocLike::lockSomeArena() {
  // Last-used arena first (ptmalloc's thread-specific hint) ...
  std::atomic<Arena *> &Hint = Hints[threadIndex() % HintSlots];
  Arena *Preferred = Hint.load(std::memory_order_relaxed);
  if (Preferred && Preferred->Lock.tryLock())
    return Preferred;

  // ... then sweep the arena list ("if a thread finds an arena locked, it
  // tries the next one") ...
  for (Arena *A = Arenas.load(std::memory_order_acquire); A; A = A->Next)
    if (A != Preferred && A->Lock.tryLock()) {
      Hint.store(A, std::memory_order_relaxed);
      return A;
    }

  // ... and if every arena is locked, create a new one (paper: Ptmalloc
  // "creates more arenas than the number of threads, e.g., 22 arenas for
  // 16 threads"). Past the cap, block on the preferred arena.
  if (NumArenas.load(std::memory_order_relaxed) < MaxArenas) {
    Arena *Fresh = createArena();
    Fresh->Lock.lock();
    Hint.store(Fresh, std::memory_order_relaxed);
    return Fresh;
  }
  Arena *Fallback =
      Preferred ? Preferred : Arenas.load(std::memory_order_acquire);
  Fallback->Lock.lock();
  Hint.store(Fallback, std::memory_order_relaxed);
  return Fallback;
}

void *PtmallocLike::malloc(std::size_t Bytes) {
  const unsigned Class = sizeToClass(Bytes);
  if (Class == LargeSizeClass) {
    const std::size_t Total = alignUp(Bytes + BlockPrefixSize, OsPageSize);
    void *Block = Pages.map(Total);
    if (!Block)
      return nullptr;
    blockWord(Block) = Total | LargeBit;
    return static_cast<char *>(Block) + BlockPrefixSize;
  }

  Arena *A = lockSomeArena();
  void *Block = A->Engine.allocateBlock(Class);
  A->Lock.unlock();
  if (!Block)
    return nullptr;
  // Prefix encodes (arena, class): the arena pointer fits 48 bits (it is
  // page-aligned, so the low bit doubles as the large-block flag = 0).
  blockWord(Block) = reinterpret_cast<std::uint64_t>(A) |
                     (static_cast<std::uint64_t>(Class) << ArenaPtrBits);
  return static_cast<char *>(Block) + BlockPrefixSize;
}

void PtmallocLike::free(void *Ptr) {
  if (!Ptr)
    return;
  void *Block = static_cast<char *>(Ptr) - BlockPrefixSize;
  const std::uint64_t Prefix = blockWord(Block);
  if (Prefix & LargeBit) {
    Pages.unmap(Block, Prefix & ~LargeBit);
    return;
  }
  // "When a thread frees a chunk, it returns the chunk to the arena from
  // which the chunk was originally allocated, and the thread must acquire
  // that arena's lock" — this is the remote-free contention the paper
  // blames for Ptmalloc's Larson collapse.
  auto *A = reinterpret_cast<Arena *>(Prefix & ArenaPtrMask);
  const unsigned Class = static_cast<unsigned>(Prefix >> ArenaPtrBits);
  A->Lock.lock();
  A->Engine.freeBlock(Block, Class);
  A->Lock.unlock();
}
