//===- baselines/SerialLockMalloc.cpp - Global-lock baseline --------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "baselines/SerialLockMalloc.h"

#include "lfmalloc/SizeClasses.h"

#include <cstdint>

using namespace lfm;

namespace {

// Small-block prefix: size class shifted left one; large-block prefix:
// mapped size with the low bit set (same convention as the lock-free
// allocator so the harness exercises identical block shapes).
constexpr std::uint64_t LargeBit = 1;

std::uint64_t &blockWord(void *Block) {
  return *static_cast<std::uint64_t *>(Block);
}

} // namespace

void *SerialLockMalloc::malloc(std::size_t Bytes) {
  const unsigned Class = sizeToClass(Bytes);
  if (Class == LargeSizeClass) {
    const std::size_t Total = alignUp(Bytes + BlockPrefixSize, OsPageSize);
    void *Block = Pages.map(Total);
    if (!Block)
      return nullptr;
    blockWord(Block) = Total | LargeBit;
    return static_cast<char *>(Block) + BlockPrefixSize;
  }
  Lock.lock();
  void *Block = Engine.allocateBlock(Class);
  Lock.unlock();
  if (!Block)
    return nullptr;
  blockWord(Block) = static_cast<std::uint64_t>(Class) << 1;
  return static_cast<char *>(Block) + BlockPrefixSize;
}

void SerialLockMalloc::free(void *Ptr) {
  if (!Ptr)
    return;
  void *Block = static_cast<char *>(Ptr) - BlockPrefixSize;
  const std::uint64_t Prefix = blockWord(Block);
  if (Prefix & LargeBit) {
    Pages.unmap(Block, Prefix & ~LargeBit);
    return;
  }
  const unsigned Class = static_cast<unsigned>(Prefix >> 1);
  Lock.lock();
  Engine.freeBlock(Block, Class);
  Lock.unlock();
}
