//===- os/PageAllocator.h - mmap-backed page provider ------------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocator's only window onto the operating system. Everywhere the
/// paper says "allocate ... directly from the OS" (large blocks, new
/// superblocks, descriptor superblocks) it means this interface.
///
/// Accounting matters as much as allocation here: the paper's §4.2.5 space
/// experiment compares the *maximum space used* by each allocator, and this
/// class maintains exactly that high-water mark, atomically, per instance,
/// so every allocator in the comparison carries its own meter.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_OS_PAGEALLOCATOR_H
#define LFMALLOC_OS_PAGEALLOCATOR_H

#include "support/Platform.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace lfm {

/// Snapshot of one PageAllocator's counters.
struct PageStats {
  std::uint64_t BytesInUse;   ///< Currently mapped through this instance.
  std::uint64_t PeakBytes;    ///< High-water mark of BytesInUse.
  std::uint64_t MapCalls;     ///< Number of successful map() calls.
  std::uint64_t UnmapCalls;   ///< Number of unmap() calls.
};

/// mmap/munmap wrapper with atomic space accounting.
///
/// Thread-safe and lock-free in the library's own code (the kernel may of
/// course serialize internally — that is precisely why the allocators batch
/// superblock requests through hyperblocks, §3.2.5). Instances are
/// independent so each allocator under test meters its own footprint.
class PageAllocator {
public:
  PageAllocator() = default;
  PageAllocator(const PageAllocator &) = delete;
  PageAllocator &operator=(const PageAllocator &) = delete;

  /// Maps \p Bytes (rounded up to whole pages) of zeroed memory aligned to
  /// \p Alignment (power of two, >= OsPageSize).
  /// \returns the mapping, or nullptr if the OS refuses.
  void *map(std::size_t Bytes, std::size_t Alignment = OsPageSize);

  /// Unmaps a region previously returned by map() with the same size.
  void unmap(void *Ptr, std::size_t Bytes);

  /// Grows or shrinks a mapping in place or by moving it (Linux mremap).
  /// \returns the (possibly relocated) region, or nullptr on failure —
  /// in which case the original mapping is untouched. Alignment beyond
  /// the OS page is not preserved across a move.
  void *remap(void *Ptr, std::size_t OldBytes, std::size_t NewBytes);

  /// \returns a consistent-enough snapshot of the counters (each counter is
  /// individually atomic; the set is racy under concurrent mapping, which
  /// is fine for benchmarking).
  PageStats stats() const;

  /// Resets the peak high-water mark to the current usage. The space bench
  /// calls this between workload phases.
  void resetPeak();

  /// Failure injection for tests: after \p Count further successful map()
  /// calls, every map() fails (returns nullptr) until re-armed with
  /// a negative value. Exercises the allocators' out-of-memory paths
  /// without exhausting the machine.
  void injectMapFailuresAfter(std::int64_t Count) {
    FailAfter.store(Count, std::memory_order_relaxed);
  }

private:
  bool shouldFailInjected() {
    if (LFM_LIKELY(FailAfter.load(std::memory_order_relaxed) < 0))
      return false;
    const std::int64_t Old = FailAfter.fetch_sub(1, std::memory_order_relaxed);
    if (Old > 0)
      return false; // Budget remains; this map may proceed.
    FailAfter.store(0, std::memory_order_relaxed); // Clamp: keep failing.
    return true;
  }

  void recordMap(std::size_t Bytes);
  void recordUnmap(std::size_t Bytes);

  std::atomic<std::uint64_t> BytesInUse{0};
  std::atomic<std::uint64_t> PeakBytes{0};
  std::atomic<std::uint64_t> MapCalls{0};
  std::atomic<std::uint64_t> UnmapCalls{0};
  std::atomic<std::int64_t> FailAfter{-1};
};

} // namespace lfm

#endif // LFMALLOC_OS_PAGEALLOCATOR_H
