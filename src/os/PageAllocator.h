//===- os/PageAllocator.h - mmap-backed page provider ------------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocator's only window onto the operating system. Everywhere the
/// paper says "allocate ... directly from the OS" (large blocks, new
/// superblocks, descriptor superblocks) it means this interface.
///
/// Accounting matters as much as allocation here: the paper's §4.2.5 space
/// experiment compares the *maximum space used* by each allocator, and this
/// class maintains exactly that high-water mark, atomically, per instance,
/// so every allocator in the comparison carries its own meter.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_OS_PAGEALLOCATOR_H
#define LFMALLOC_OS_PAGEALLOCATOR_H

#include "support/Platform.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace lfm {

/// Snapshot of one PageAllocator's counters.
struct PageStats {
  std::uint64_t BytesInUse;   ///< Currently mapped through this instance.
  std::uint64_t PeakBytes;    ///< High-water mark of BytesInUse.
  std::uint64_t MapCalls;     ///< Number of successful map() calls.
  std::uint64_t UnmapCalls;   ///< Number of unmap() calls.
  std::uint64_t DecommitCalls;     ///< Number of successful decommit() calls.
  std::uint64_t BytesDecommitted; ///< Total bytes ever decommitted.
  std::uint64_t MapRetries;   ///< map() attempts retried after a failure.
  std::uint64_t MapFailures;  ///< map() calls that failed after all retries.
  std::uint64_t BytesReserved; ///< Address space reserved via reserve().
  std::uint64_t ReserveCalls;  ///< Number of successful reserve() calls.
};

/// mmap/munmap wrapper with atomic space accounting.
///
/// Thread-safe and lock-free in the library's own code (the kernel may of
/// course serialize internally — that is precisely why the allocators batch
/// superblock requests through hyperblocks, §3.2.5). Instances are
/// independent so each allocator under test meters its own footprint.
class PageAllocator {
public:
  PageAllocator() = default;
  PageAllocator(const PageAllocator &) = delete;
  PageAllocator &operator=(const PageAllocator &) = delete;

  /// Maps \p Bytes (rounded up to whole pages) of zeroed memory aligned to
  /// \p Alignment (power of two, >= OsPageSize). Transient OS refusals are
  /// retried a bounded number of times with a short exponential backoff.
  /// \returns the mapping, or nullptr with errno set to ENOMEM once every
  /// retry has failed.
  void *map(std::size_t Bytes, std::size_t Alignment = OsPageSize);

  /// Unmaps a region previously returned by map() with the same size.
  void unmap(void *Ptr, std::size_t Bytes);

  /// Returns the physical pages behind [Ptr, Ptr+Bytes) to the OS while
  /// keeping the virtual mapping intact (madvise MADV_DONTNEED): RSS drops
  /// immediately and any later access refaults zero-filled pages. This is
  /// the only release primitive safe to call from lock-free context — a
  /// stalled reader may still dereference the region and observes zeros
  /// rather than faulting (TreiberStack type-stability contract).
  /// \returns true when the pages were released.
  bool decommit(void *Ptr, std::size_t Bytes);

  /// Reserves \p Bytes of address space aligned to \p Alignment without
  /// committing physical memory (mmap with MAP_NORESERVE): the scalloc-style
  /// span strategy — reserve large, commit lazily on first touch. Reserved
  /// bytes are metered separately (PageStats::BytesReserved), NOT in
  /// BytesInUse/PeakBytes: until touched they cost nothing physical, and
  /// folding a multi-GiB reservation into the §4.2.5 space meter would
  /// drown the signal it exists to measure. Callers account committed pages
  /// through recordCommit()/recordUncommit() as they touch and decommit.
  /// Fail-injectable like map(). \returns the reservation, or nullptr with
  /// errno = ENOMEM.
  void *reserve(std::size_t Bytes, std::size_t Alignment = OsPageSize);

  /// Releases a reservation previously returned by reserve() with the same
  /// size. The caller must have recordUncommit()ed whatever it had
  /// recordCommit()ed inside the span first.
  void unreserve(void *Ptr, std::size_t Bytes);

  /// Folds \p Bytes of lazily-committed reserved memory into the
  /// BytesInUse/PeakBytes meter — called by span owners when they hand out
  /// previously-untouched pages. No map call is counted (none happened).
  void recordCommit(std::size_t Bytes);

  /// Reverse of recordCommit(): the span owner decommitted \p Bytes (the
  /// madvise itself goes through decommit()).
  void recordUncommit(std::size_t Bytes);

  /// Grows or shrinks a mapping in place or by moving it (Linux mremap).
  /// \returns the (possibly relocated) region, or nullptr on failure —
  /// in which case the original mapping is untouched. Alignment beyond
  /// the OS page is not preserved across a move.
  void *remap(void *Ptr, std::size_t OldBytes, std::size_t NewBytes);

  /// \returns a consistent-enough snapshot of the counters (each counter is
  /// individually atomic; the set is racy under concurrent mapping, which
  /// is fine for benchmarking).
  PageStats stats() const;

  /// Resets the peak high-water mark to the current usage. The space bench
  /// calls this between workload phases.
  void resetPeak();

  /// Failure injection for tests: after \p Count further successful map()
  /// calls, every map() fails (returns nullptr) until re-armed with
  /// a negative value. Exercises the allocators' out-of-memory paths
  /// without exhausting the machine.
  void injectMapFailuresAfter(std::int64_t Count) {
    injectMapFailures(Count, -1);
  }

  /// Finite-budget variant: after \p After further successful map attempts,
  /// the next \p FailCount attempts fail and then mapping recovers
  /// (FailCount < 0 keeps failing forever, as injectMapFailuresAfter).
  /// Each retry inside one map() call counts as an attempt, so a budget of
  /// one proves the retry loop: the first attempt fails, the retry succeeds.
  void injectMapFailures(std::int64_t After, std::int64_t FailCount) {
    FailBudget.store(FailCount, std::memory_order_relaxed);
    FailAfter.store(After, std::memory_order_relaxed);
  }

private:
  bool shouldFailInjected() {
    if (LFM_LIKELY(FailAfter.load(std::memory_order_relaxed) < 0))
      return false;
    const std::int64_t Old = FailAfter.fetch_sub(1, std::memory_order_relaxed);
    if (Old > 0)
      return false; // Budget remains; this map may proceed.
    FailAfter.store(0, std::memory_order_relaxed); // Clamp: still armed.
    const std::int64_t Budget = FailBudget.load(std::memory_order_relaxed);
    if (Budget < 0)
      return true; // Unbounded: keep failing until re-armed.
    if (Budget == 0) {
      FailAfter.store(-1, std::memory_order_relaxed); // Exhausted: recover.
      return false;
    }
    FailBudget.store(Budget - 1, std::memory_order_relaxed);
    return true;
  }

  void *mapOnce(std::size_t Size, std::size_t Alignment);

  void recordMap(std::size_t Bytes);
  void recordUnmap(std::size_t Bytes);

  std::atomic<std::uint64_t> BytesInUse{0};
  std::atomic<std::uint64_t> PeakBytes{0};
  std::atomic<std::uint64_t> MapCalls{0};
  std::atomic<std::uint64_t> UnmapCalls{0};
  std::atomic<std::uint64_t> DecommitCalls{0};
  std::atomic<std::uint64_t> BytesDecommittedCtr{0};
  std::atomic<std::uint64_t> MapRetries{0};
  std::atomic<std::uint64_t> MapFailures{0};
  std::atomic<std::uint64_t> BytesReservedCtr{0};
  std::atomic<std::uint64_t> ReserveCalls{0};
  std::atomic<std::int64_t> FailAfter{-1};
  std::atomic<std::int64_t> FailBudget{-1};
};

} // namespace lfm

#endif // LFMALLOC_OS_PAGEALLOCATOR_H
