//===- os/PageAllocator.cpp - mmap-backed page provider -------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "os/PageAllocator.h"

#include <cassert>
#include <cerrno>
#include <ctime>
#include <sys/mman.h>

using namespace lfm;

namespace {

/// Bounded retry policy for transient map failures: the kernel can refuse a
/// mapping under momentary pressure (overcommit accounting, cgroup limits)
/// and succeed a moment later once reclaim catches up. Three attempts with
/// 50us/100us sleeps keeps the worst-case added latency well under a
/// millisecond while absorbing the common transients. Callers that can free
/// cache themselves (LFAllocator::oomRescue) get their shot after this
/// gives up.
constexpr int MapRetryAttempts = 3;

void backoffSleep(int Attempt) {
  timespec Ts{0, 50'000L << Attempt}; // 50us, 100us, ...
  ::nanosleep(&Ts, nullptr);
}

} // namespace

void *PageAllocator::mapOnce(std::size_t Size, std::size_t Alignment) {
  if (LFM_UNLIKELY(shouldFailInjected()))
    return nullptr;

  if (Alignment <= OsPageSize) {
    void *Ptr = ::mmap(nullptr, Size, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (Ptr == MAP_FAILED)
      return nullptr;
    recordMap(Size);
    return Ptr;
  }

  // Over-map by the alignment, then trim the misaligned head and tail. This
  // is how superblocks get their power-of-two alignment, which in turn lets
  // the Active word steal its low bits for credits (paper §3.2.1).
  const std::size_t Padded = Size + Alignment;
  void *Raw = ::mmap(nullptr, Padded, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Raw == MAP_FAILED)
    return nullptr;

  const std::uintptr_t Base = reinterpret_cast<std::uintptr_t>(Raw);
  const std::uintptr_t Aligned = alignUp(Base, Alignment);
  const std::size_t HeadSlack = Aligned - Base;
  const std::size_t TailSlack = Padded - HeadSlack - Size;
  if (HeadSlack)
    ::munmap(Raw, HeadSlack);
  if (TailSlack)
    ::munmap(reinterpret_cast<void *>(Aligned + Size), TailSlack);
  recordMap(Size);
  return reinterpret_cast<void *>(Aligned);
}

void *PageAllocator::map(std::size_t Bytes, std::size_t Alignment) {
  assert(isPowerOf2(Alignment) && Alignment >= OsPageSize &&
         "alignment must be a power of two >= the OS page size");
  const std::size_t Size = alignUp(Bytes, OsPageSize);
  for (int Attempt = 0;; ++Attempt) {
    void *Ptr = mapOnce(Size, Alignment);
    if (LFM_LIKELY(Ptr != nullptr))
      return Ptr;
    if (Attempt + 1 >= MapRetryAttempts)
      break;
    MapRetries.fetch_add(1, std::memory_order_relaxed);
    backoffSleep(Attempt);
  }
  MapFailures.fetch_add(1, std::memory_order_relaxed);
  errno = ENOMEM;
  return nullptr;
}

void PageAllocator::unmap(void *Ptr, std::size_t Bytes) {
  assert(Ptr && "unmap of null");
  const std::size_t Size = alignUp(Bytes, OsPageSize);
  [[maybe_unused]] const int Rc = ::munmap(Ptr, Size);
  assert(Rc == 0 && "munmap failed: bad pointer or size");
  recordUnmap(Size);
}

bool PageAllocator::decommit(void *Ptr, std::size_t Bytes) {
  assert(Ptr && "decommit of null");
  const std::size_t Size = alignUp(Bytes, OsPageSize);
  if (::madvise(Ptr, Size, MADV_DONTNEED) != 0)
    return false;
  DecommitCalls.fetch_add(1, std::memory_order_relaxed);
  BytesDecommittedCtr.fetch_add(Size, std::memory_order_relaxed);
  return true;
}

void *PageAllocator::remap(void *Ptr, std::size_t OldBytes,
                           std::size_t NewBytes) {
  assert(Ptr && "remap of null");
  const std::size_t OldSize = alignUp(OldBytes, OsPageSize);
  const std::size_t NewSize = alignUp(NewBytes, OsPageSize);
  if (OldSize == NewSize)
    return Ptr;
  if (NewSize > OldSize && LFM_UNLIKELY(shouldFailInjected()))
    return nullptr;
  void *Fresh = ::mremap(Ptr, OldSize, NewSize, MREMAP_MAYMOVE);
  if (Fresh == MAP_FAILED)
    return nullptr;
  if (NewSize > OldSize)
    recordMap(NewSize - OldSize);
  else
    recordUnmap(OldSize - NewSize);
  return Fresh;
}

void *PageAllocator::reserve(std::size_t Bytes, std::size_t Alignment) {
  assert(isPowerOf2(Alignment) && Alignment >= OsPageSize &&
         "alignment must be a power of two >= the OS page size");
  const std::size_t Size = alignUp(Bytes, OsPageSize);
  if (LFM_UNLIKELY(shouldFailInjected())) {
    MapFailures.fetch_add(1, std::memory_order_relaxed);
    errno = ENOMEM;
    return nullptr;
  }
  // MAP_NORESERVE: no swap accounting up front, pages materialize on first
  // touch. Alignment by over-map-and-trim, as in mapOnce — trimming an
  // untouched reservation is free.
  const std::size_t Padded = Alignment > OsPageSize ? Size + Alignment : Size;
  void *Raw = ::mmap(nullptr, Padded, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (Raw == MAP_FAILED) {
    MapFailures.fetch_add(1, std::memory_order_relaxed);
    errno = ENOMEM;
    return nullptr;
  }
  std::uintptr_t Base = reinterpret_cast<std::uintptr_t>(Raw);
  if (Alignment > OsPageSize) {
    const std::uintptr_t Aligned = alignUp(Base, Alignment);
    const std::size_t HeadSlack = Aligned - Base;
    const std::size_t TailSlack = Padded - HeadSlack - Size;
    if (HeadSlack)
      ::munmap(Raw, HeadSlack);
    if (TailSlack)
      ::munmap(reinterpret_cast<void *>(Aligned + Size), TailSlack);
    Base = Aligned;
  }
  ReserveCalls.fetch_add(1, std::memory_order_relaxed);
  BytesReservedCtr.fetch_add(Size, std::memory_order_relaxed);
  return reinterpret_cast<void *>(Base);
}

void PageAllocator::unreserve(void *Ptr, std::size_t Bytes) {
  assert(Ptr && "unreserve of null");
  const std::size_t Size = alignUp(Bytes, OsPageSize);
  [[maybe_unused]] const int Rc = ::munmap(Ptr, Size);
  assert(Rc == 0 && "munmap failed: bad pointer or size");
  BytesReservedCtr.fetch_sub(Size, std::memory_order_relaxed);
}

void PageAllocator::recordCommit(std::size_t Bytes) {
  const std::uint64_t Now =
      BytesInUse.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
  std::uint64_t Peak = PeakBytes.load(std::memory_order_relaxed);
  while (Now > Peak &&
         !PeakBytes.compare_exchange_weak(Peak, Now,
                                          std::memory_order_relaxed)) {
  }
}

void PageAllocator::recordUncommit(std::size_t Bytes) {
  BytesInUse.fetch_sub(Bytes, std::memory_order_relaxed);
}

PageStats PageAllocator::stats() const {
  return PageStats{BytesInUse.load(std::memory_order_relaxed),
                   PeakBytes.load(std::memory_order_relaxed),
                   MapCalls.load(std::memory_order_relaxed),
                   UnmapCalls.load(std::memory_order_relaxed),
                   DecommitCalls.load(std::memory_order_relaxed),
                   BytesDecommittedCtr.load(std::memory_order_relaxed),
                   MapRetries.load(std::memory_order_relaxed),
                   MapFailures.load(std::memory_order_relaxed),
                   BytesReservedCtr.load(std::memory_order_relaxed),
                   ReserveCalls.load(std::memory_order_relaxed)};
}

void PageAllocator::resetPeak() {
  PeakBytes.store(BytesInUse.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
}

void PageAllocator::recordMap(std::size_t Bytes) {
  MapCalls.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t Now =
      BytesInUse.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
  // Lock-free max update of the high-water mark.
  std::uint64_t Peak = PeakBytes.load(std::memory_order_relaxed);
  while (Now > Peak &&
         !PeakBytes.compare_exchange_weak(Peak, Now,
                                          std::memory_order_relaxed)) {
  }
}

void PageAllocator::recordUnmap(std::size_t Bytes) {
  UnmapCalls.fetch_add(1, std::memory_order_relaxed);
  BytesInUse.fetch_sub(Bytes, std::memory_order_relaxed);
}
